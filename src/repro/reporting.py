"""Reusable renderers for the paper's tables.

The benchmarks print Tables I-III while timing the underlying pipeline;
these functions carry the actual formatting so scripts, notebooks, and the
CLI can regenerate the same tables from an :class:`ExperimentResult` (or a
loaded archive) without the benchmark harness.  Each renderer supports
plain-text and GitHub-markdown output.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.counters.events import default_catalog
from repro.errors import DataError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline import ExperimentResult

_FORMATS = ("text", "markdown")


def _check_format(style: str) -> None:
    if style not in _FORMATS:
        raise DataError(f"format must be one of {_FORMATS}, got {style!r}")


def _table(headers: list[str], rows: list[list[str]], style: str) -> str:
    if style == "markdown":
        lines = [
            "| " + " | ".join(headers) + " |",
            "|" + "|".join("---" for _ in headers) + "|",
        ]
        lines.extend("| " + " | ".join(row) + " |" for row in rows)
        return "\n".join(lines)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rows
    )
    return "\n".join(lines)


def render_table1(result: "ExperimentResult", style: str = "text") -> str:
    """Table I: the workload suite with measured IPC and TMA category."""
    _check_format(style)
    rows = []
    for run in list(result.training_runs.values()) + list(
        result.testing_runs.values()
    ):
        rows.append(
            [
                run.workload.name,
                run.workload.configuration or "—",
                run.workload.role,
                run.table1_category,
                f"{run.measured_ipc:.2f}",
                f"{run.tma.fraction('retiring'):.0%}",
            ]
        )
    headers = ["workload", "configuration", "role", "main TMA bottleneck",
               "IPC", "retiring"]
    title = "Table I — workloads used to evaluate SPIRE"
    return f"{title}\n\n{_table(headers, rows, style)}"


def render_table2(
    result: "ExperimentResult", top_k: int = 10, style: str = "text"
) -> str:
    """Table II: top metrics per testing workload with IPC estimates."""
    _check_format(style)
    catalog = default_catalog()
    abbreviations = catalog.abbreviations()
    sections = ["Table II — top performance metrics per testing workload"]
    for name, run in result.testing_runs.items():
        report = result.analyze(name, top_k=top_k)
        rows = [
            [
                f"{entry.estimate:.2f}",
                abbreviations.get(entry.metric, ""),
                report.area_of(entry.metric),
                entry.metric,
            ]
            for entry in report.top(top_k)
        ]
        headers = ["est. IPC", "abbr", "area", "metric"]
        sections.append(
            f"\n{run.workload.label} — measured IPC "
            f"{report.measured_throughput:.2f}, TMA {run.table1_category}\n\n"
            + _table(headers, rows, style)
        )
    return "\n".join(sections)


def render_table3(style: str = "text") -> str:
    """Table III: abbreviation → event name by microarchitecture area."""
    _check_format(style)
    catalog = default_catalog()
    rows = sorted(
        ([e.area, e.abbr, e.name] for e in catalog if e.abbr),
        key=lambda r: (r[0], r[1]),
    )
    headers = ["area", "abbr", "expanded metric name"]
    title = "Table III — performance metric abbreviations by area"
    return f"{title}\n\n{_table(headers, rows, style)}"


def render_summary(result: "ExperimentResult", top_k: int = 10) -> str:
    """The §V headline: per-test-workload SPIRE vs TMA agreement."""
    rows = []
    matches = 0
    for name, run in result.testing_runs.items():
        report = result.analyze(name, top_k=top_k)
        top_area = report.area_of(report.top(1)[0].metric)
        agree = run.table1_category in (top_area, report.dominant_area(top_k))
        matches += agree
        rows.append(
            [
                name,
                f"{report.measured_throughput:.2f}",
                run.table1_category,
                top_area,
                "agree" if agree else "differ",
            ]
        )
    headers = ["workload", "IPC", "TMA", "SPIRE #1 area", "verdict"]
    body = _table(headers, rows, "text")
    return (
        f"{body}\n\nagreement: {matches}/{len(result.testing_runs)} "
        f"test workloads"
    )
