"""Hot model rollover: replace a served model without dropping traffic.

A long-lived server must be able to adopt a retrained model while
requests are in flight.  The rollover protocol never exposes traffic to
an unverified artifact:

1. **Stage** — the incoming artifact (a trained model to pack, or raw
   packed ``.spm`` bytes) is written atomically into a staging slot
   (``<store>/.staging/<name>.spm``), never the live path.
2. **Verify** — the staged file is mapped with the same
   :func:`~repro.serve.registry.map_model` integrity pipeline the cold
   path uses (format, sha256, structural checks).  A failure quarantines
   the *staged* file under ``.staging/.quarantine/`` and raises; the
   live artifact and resident model are untouched.
3. **Canary** — the staged model answers a synthetic estimate built from
   its own rooflines' apexes; non-finite or empty output rejects the
   artifact before any client sees it.
4. **Swap** — ``os.replace`` moves the staged file over the live path
   (atomic, same directory tree) and the registry's resident entry is
   swapped in one lock region.  In-flight requests keep the old model
   object — the old mmap stays alive until they finish, so their
   responses are bit-identical to pre-rollover serving — while every
   subsequent lane resolution gets the new mapping.

In a supervised multi-worker fleet the worker that handled the install
broadcasts the swap through the supervisor; peer workers :meth:`adopt`
the new artifact by dropping their resident entry, so their next request
remaps (single-flight) from the shared store.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.columns import SampleArray
from repro.core.ensemble import SpireModel
from repro.errors import DataError, EstimationError
from repro.guard.artifact import atomic_write_bytes, quarantine_file
from repro.serve.registry import (
    PACKED_MODEL_SUFFIX,
    ModelRegistry,
    map_model,
    pack_model,
)

__all__ = ["RolloverEvent", "RolloverManager", "STAGING_DIRNAME"]

STAGING_DIRNAME = ".staging"


@dataclass(frozen=True, slots=True)
class RolloverEvent:
    """One install attempt's outcome, kept in the rollover history."""

    model: str
    action: str        # "installed" | "rejected" | "adopted"
    detail: str = ""
    checksum: str = ""
    duration_ms: float = 0.0

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "action": self.action,
            "detail": self.detail,
            "checksum": self.checksum,
            "duration_ms": round(self.duration_ms, 3),
        }


class RolloverManager:
    """Stage → verify → canary → swap, with a bounded event history."""

    def __init__(
        self,
        registry: ModelRegistry,
        canary_rows: int = 4,
        history_limit: int = 32,
        on_swap=None,
    ):
        self.registry = registry
        self.canary_rows = canary_rows
        self.history_limit = history_limit
        self.installs = 0
        self.rejected = 0
        self.adopted = 0
        self.history: "list[RolloverEvent]" = []
        #: Called with the model name after a successful swap — the
        #: supervised worker uses this to broadcast the rollover to its
        #: peers over the heartbeat pipe.
        self.on_swap = on_swap

    # -- staging paths -------------------------------------------------

    def staging_dir(self) -> Path:
        return self.registry.store_dir / STAGING_DIRNAME

    def staging_path(self, name: str) -> Path:
        self.registry.path_for(name)  # reuse the name sandbox check
        return self.staging_dir() / f"{name}{PACKED_MODEL_SUFFIX}"

    # -- install entry points ------------------------------------------

    def install_model(self, name: str, model: SpireModel) -> RolloverEvent:
        """Pack a trained model into staging, then verify/canary/swap."""
        started = time.perf_counter()
        staged = pack_model(model, self.staging_path(name))
        return self._promote(name, staged, started)

    def install_packed(self, name: str, blob: bytes) -> RolloverEvent:
        """Stage raw packed ``.spm`` bytes, then verify/canary/swap."""
        started = time.perf_counter()
        staged = atomic_write_bytes(self.staging_path(name), blob)
        return self._promote(name, staged, started)

    def adopt(self, name: str) -> bool:
        """Drop the resident entry so the next request remaps from disk.

        The peer-worker side of a fleet rollover: the shared store
        already holds the swapped artifact, this worker just stops
        serving its stale resident copy.  In-flight requests holding the
        old model object still finish on the old mapping.
        """
        dropped = self.registry.evict(name)
        self.adopted += 1
        self._record(
            RolloverEvent(
                model=name,
                action="adopted",
                detail="resident copy dropped" if dropped else "not resident",
            )
        )
        return dropped

    # -- the promotion pipeline ----------------------------------------

    def _promote(self, name: str, staged: Path, started: float) -> RolloverEvent:
        try:
            model, mapping = map_model(staged)  # quarantines on failure
        except DataError as exc:
            return self._reject(name, started, str(exc))
        try:
            self._canary(model)
        except DataError as exc:
            try:
                mapping.close()
            except BufferError:
                pass
            quarantine_file(staged, f"canary failed: {exc}")
            return self._reject(name, started, f"canary failed: {exc}")

        checksum = self._checksum_of(staged, mapping)
        live = self.registry.path_for(name)
        # Atomic alias flip: the file first (os.replace keeps the staged
        # inode, which is exactly what `mapping` has mapped), then the
        # resident entry in one registry lock region.
        os.replace(staged, live)
        self.registry.replace_resident(name, model, mapping)
        self.installs += 1
        event = RolloverEvent(
            model=name,
            action="installed",
            detail=f"{len(model)} roofline(s)",
            checksum=checksum,
            duration_ms=(time.perf_counter() - started) * 1e3,
        )
        self._record(event)
        if self.on_swap is not None:
            self.on_swap(name)
        return event

    def _canary(self, model: SpireModel) -> None:
        """A staged model must answer a finite estimate before serving.

        The probe is synthetic but model-specific: each roofline is
        evaluated at fractions of its own apex intensity, exactly the
        regime real requests hit.
        """
        metrics, times, works, counts = [], [], [], []
        for metric in model.metrics:
            apex = model.roofline(metric).apex
            base = apex.x if math.isfinite(apex.x) and apex.x > 0 else 1.0
            for step in range(1, self.canary_rows + 1):
                intensity = base * step / self.canary_rows
                metrics.append(metric)
                times.append(1.0)
                works.append(intensity)
                counts.append(1.0)
        if not metrics:
            raise DataError("staged model has no rooflines")
        probe = SampleArray.from_lists(metrics, times, works, counts)
        try:
            estimate = model.estimate(probe.to_sample_set())
        except EstimationError as exc:
            raise DataError(f"canary estimate failed: {exc}") from None
        for metric, value in estimate.per_metric.items():
            if not math.isfinite(value) or value < 0:
                raise DataError(
                    f"canary produced a non-finite/negative bound for "
                    f"{metric!r}: {value}"
                )

    @staticmethod
    def _checksum_of(path: Path, mapping) -> str:
        """The artifact's declared payload checksum (already verified)."""
        try:
            import json

            newline = mapping.find(b"\n")
            head = json.loads(mapping[:newline].decode("utf-8"))
            return str(head["header"]["checksum"])
        except Exception:  # pragma: no cover - verified heads parse
            return ""

    def _reject(self, name: str, started: float, reason: str) -> RolloverEvent:
        self.rejected += 1
        event = RolloverEvent(
            model=name,
            action="rejected",
            detail=reason,
            duration_ms=(time.perf_counter() - started) * 1e3,
        )
        self._record(event)
        raise DataError(f"rollover of model {name!r} rejected: {reason}")

    def _record(self, event: RolloverEvent) -> None:
        self.history.append(event)
        del self.history[: -self.history_limit]

    # -- reporting -----------------------------------------------------

    def snapshot(self) -> dict:
        """Counters + recent history for ``serve_state``."""
        return {
            "installs": self.installs,
            "rejected": self.rejected,
            "adopted": self.adopted,
            "history": [event.to_dict() for event in self.history[-8:]],
        }
