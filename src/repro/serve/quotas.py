"""Per-model admission quotas: token buckets ahead of the batcher lanes.

The micro-batcher's queue limit protects the *server* from unbounded
memory, but it is per-lane and reactive: a client storm on one model
fills that model's lane and, because every queued request still costs an
evaluation pass, steals wall clock from every other lane on the shared
event loop.  Admission quotas bound the *rate* a model may consume
before its requests ever reach a lane: each model gets a token bucket
(``rate`` tokens/second, ``burst`` capacity) and a request that finds
the bucket empty is refused immediately with the exact number of
seconds until the next token — the ``Retry-After`` the HTTP layer
already knows how to send.  Overload on one model therefore costs that
model 429s and costs its neighbours nothing.

The clock is injectable so tests (and the fault harness's quota-storm
scenario) can drive the buckets deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError, ServeOverloadError

__all__ = ["AdmissionController", "QuotaPolicy", "TokenBucket"]


@dataclass(frozen=True, slots=True)
class QuotaPolicy:
    """One model's admission budget.

    ``rate`` is the sustained admission rate in requests per second;
    ``burst`` is the bucket capacity — how far a quiet model may get
    ahead of its sustained rate before refusals start.
    """

    rate: float
    burst: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError("quota rate must be positive (requests/second)")
        if self.burst < 0:
            raise ConfigError("quota burst cannot be negative")

    @property
    def capacity(self) -> float:
        """Bucket capacity: at least one whole request."""
        return max(self.burst, 1.0)

    @classmethod
    def parse(cls, raw: str) -> "QuotaPolicy":
        """Parse the CLI shape ``RATE`` or ``RATE:BURST``."""
        rate_text, _, burst_text = raw.partition(":")
        try:
            rate = float(rate_text)
            burst = float(burst_text) if burst_text else 0.0
        except ValueError:
            raise ConfigError(
                f"quota must be RATE or RATE:BURST, got {raw!r}"
            ) from None
        return cls(rate=rate, burst=burst)


class TokenBucket:
    """A standard token bucket with a deterministic, injectable clock."""

    __slots__ = ("policy", "_clock", "_tokens", "_updated", "_lock")

    def __init__(
        self,
        policy: QuotaPolicy,
        clock: "Callable[[], float]" = time.monotonic,
    ):
        self.policy = policy
        self._clock = clock
        self._tokens = policy.capacity  # a fresh bucket starts full
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(now - self._updated, 0.0)
        self._updated = now
        self._tokens = min(
            self.policy.capacity, self._tokens + elapsed * self.policy.rate
        )

    def admit(self, cost: float = 1.0) -> "float | None":
        """Take ``cost`` tokens; ``None`` on admission, else seconds to wait.

        The returned delay is exact for the injected clock: after waiting
        that long the same ``cost`` is guaranteed to be admitted (absent
        competing callers).
        """
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= cost:
                self._tokens -= cost
                return None
            return (cost - self._tokens) / self.policy.rate

    def level(self) -> float:
        """Current token count (after refill), for introspection."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class AdmissionController:
    """Token-bucket admission ahead of the micro-batcher lanes.

    ``policies`` maps model names to :class:`QuotaPolicy`; ``default``
    applies to models without an explicit policy (``None`` means
    unlimited — the controller never refuses them).  Refusals raise
    :class:`~repro.errors.ServeOverloadError` with ``quota=True`` and a
    ``retry_after`` computed from the bucket, which the HTTP layer maps
    to ``429`` + ``Retry-After``.
    """

    def __init__(
        self,
        policies: "dict[str, QuotaPolicy] | None" = None,
        default: "QuotaPolicy | None" = None,
        clock: "Callable[[], float]" = time.monotonic,
        stats=None,
    ):
        self._policies = dict(policies or {})
        self._default = default
        self._clock = clock
        self._buckets: "dict[str, TokenBucket]" = {}
        self._lock = threading.Lock()
        self.stats = stats

    def policy_for(self, model: str) -> "QuotaPolicy | None":
        return self._policies.get(model, self._default)

    def _bucket(self, model: str) -> "TokenBucket | None":
        policy = self.policy_for(model)
        if policy is None:
            return None
        with self._lock:
            bucket = self._buckets.get(model)
            if bucket is None:
                bucket = TokenBucket(policy, clock=self._clock)
                self._buckets[model] = bucket
            return bucket

    def admit(self, model: str) -> None:
        """Admit one request for ``model`` or raise the 429-shaped error."""
        bucket = self._bucket(model)
        if bucket is None:
            return
        delay = bucket.admit()
        if delay is None:
            return
        if self.stats is not None:
            self.stats.note_quota_rejected(model)
        raise ServeOverloadError(
            f"admission quota exhausted for model {model!r} "
            f"({bucket.policy.rate:g} req/s, burst {bucket.policy.capacity:g})",
            retry_after=delay,
            quota=True,
        )

    def snapshot(self) -> dict:
        """Policies and live bucket levels for ``serve_state``."""
        with self._lock:
            levels = {
                name: round(bucket.level(), 3)
                for name, bucket in self._buckets.items()
            }
        payload: dict = {
            "policies": {
                name: {"rate": p.rate, "burst": p.capacity}
                for name, p in sorted(self._policies.items())
            },
            "levels": levels,
        }
        if self._default is not None:
            payload["default"] = {
                "rate": self._default.rate,
                "burst": self._default.capacity,
            }
        return payload
