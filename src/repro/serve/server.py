"""The SPIRE inference service: asyncio HTTP/JSON, stdlib only.

``spire serve`` turns a trained model store into a long-running endpoint
that accepts counter-sample batches (JSON records or columnar JSON) or
raw ``perf stat -x,`` CSV and answers with bottleneck rankings and
optional TMA drilldowns.  Concurrent requests are coalesced by the
adaptive micro-batcher (:mod:`repro.serve.batching`) into one fused
evaluation per model; responses are bit-identical to what each request
would get evaluated alone.

Routes
------
- ``GET  /health`` — guard health report with ``serve_state`` attached
- ``GET  /v1/models`` — models available in the registry
- ``POST /v1/estimate`` — compact estimate (throughput + per-metric)
- ``POST /v1/analyze`` — full ranking, measured throughput, optional TMA

Request bodies (``POST``): ``{"model": ..., "samples": [...]}`` record
lists (``"screen": true`` routes them through the streaming timestamp
screen and sanitizer first), ``{"model": ..., "columns": {...}}``
columnar payloads, or ``Content-Type: text/csv`` raw ``perf stat``
output with the model named in the query string (``?model=...``).

Backpressure maps to HTTP: a full queue answers ``429`` with a
``Retry-After`` header under the default ``reject`` policy, and sheds
the *oldest* queued request with ``503`` under ``load_shed=oldest``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

from repro.core.columns import SampleArray
from repro.core.ensemble import EnsembleEstimate
from repro.core.sanitize import QualityReport, SampleSanitizer, TimestampScreen
from repro.counters.events import default_catalog
from repro.counters.perf_parser import PerfStatParser
from repro.errors import (
    DataError,
    EstimationError,
    ServeOverloadError,
    SpireError,
)
from repro.guard.dispatch import health_report
from repro.serve.batching import MicroBatcher
from repro.serve.quotas import AdmissionController, QuotaPolicy
from repro.serve.registry import ModelRegistry
from repro.serve.rollover import RolloverManager
from repro.serve.stats import ServeStats
from repro.tma.drilldown import drilldown
from repro.tma.topdown import TopDownAnalyzer
from repro.uarch.config import skylake_gold_6126

__all__ = ["ServeConfig", "SpireServer"]

_MAX_HEAD = 32 * 1024


@dataclass
class ServeConfig:
    """Knobs for one server instance (see ``docs/serving.md``)."""

    host: str = "127.0.0.1"
    port: int = 8583
    store_dir: str = "models"
    capacity: int = 4
    micro_batch: bool = True
    max_batch: int = 64
    window: float = 0.002       # seconds the batcher waits for batch-mates
    queue_limit: int = 256
    load_shed: str = "reject"   # or "oldest"
    retry_after: float = 0.05
    max_body: int = 8 * 1024 * 1024
    work_event: str = "instructions"
    time_event: str = "cycles"
    separator: str = ","
    # Per-model admission quotas (None entries / no entry = unlimited).
    quotas: "dict[str, QuotaPolicy] | None" = None
    default_quota: "QuotaPolicy | None" = None
    # Supervised-fleet plumbing: SO_REUSEPORT lets N workers share one
    # port; ``sock`` carries a pre-bound listening socket (the fallback
    # when REUSEPORT is unavailable — fork-inherited from the parent).
    reuse_port: bool = False
    sock: "object | None" = field(default=None, repr=False, compare=False)
    worker_slot: "int | None" = None
    # Graceful-shutdown budget: how long stop(drain=True) waits for
    # busy handlers to write their final responses.
    drain_timeout: float = 5.0
    # Chaos only: expose /debug/crash and /debug/hang fault routes.
    debug_faults: bool = False

    def __post_init__(self) -> None:
        if self.max_body < 1:
            raise SpireError("max_body must be positive")
        if self.drain_timeout < 0:
            raise SpireError("drain_timeout cannot be negative")


@dataclass
class _Request:
    method: str
    path: str
    query: "dict[str, str]"
    headers: "dict[str, str]"
    body: bytes


@dataclass
class _Response:
    status: int
    payload: dict
    headers: "dict[str, str]" = field(default_factory=dict)


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class SpireServer:
    """One serving process: registry + micro-batcher + HTTP front door."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.stats = ServeStats()
        self.stats.worker_slot = self.config.worker_slot
        self.registry = ModelRegistry(
            self.config.store_dir,
            capacity=self.config.capacity,
            stats=self.stats,
        )
        self.admission = AdmissionController(
            policies=self.config.quotas,
            default=self.config.default_quota,
            stats=self.stats,
        )
        self.rollover = RolloverManager(
            self.registry, on_swap=self._notify_rollover
        )
        #: Supervised workers point this at their control channel so a
        #: successful install is broadcast to peer workers.
        self.on_rollover: "object | None" = None
        self.batcher: MicroBatcher | None = None
        if self.config.micro_batch:
            self.batcher = MicroBatcher(
                resolve=self.registry.get,
                max_batch=self.config.max_batch,
                window=self.config.window,
                queue_limit=self.config.queue_limit,
                load_shed=self.config.load_shed,
                retry_after=self.config.retry_after,
                stats=self.stats,
            )
        self._parser = PerfStatParser(
            work_event=self.config.work_event,
            time_event=self.config.time_event,
            separator=self.config.separator,
        )
        self._server: "asyncio.AbstractServer | None" = None
        self.port = self.config.port
        self._handler_tasks: "set[asyncio.Task]" = set()
        self._busy = 0
        self._idle_event = asyncio.Event()
        self._idle_event.set()

    def _notify_rollover(self, name: str) -> None:
        callback = self.on_rollover
        if callback is not None:
            callback(name)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        if self.config.sock is not None:
            # Fork-inherited listening socket (the no-REUSEPORT fleet
            # fallback): the kernel load-balances accepts across workers.
            self._server = await asyncio.start_server(
                self._handle_client, sock=self.config.sock, limit=_MAX_HEAD
            )
        else:
            kwargs: dict = {}
            if self.config.reuse_port:
                kwargs["reuse_port"] = True
            self._server = await asyncio.start_server(
                self._handle_client,
                host=self.config.host,
                port=self.config.port,
                limit=_MAX_HEAD,
                **kwargs,
            )
        # Port 0 asks the OS for a free port; report the one we got.
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, drain: bool = False) -> None:
        """Shut down, gracefully (``drain=True``) or hard.

        Ordered either way: the listener closes first so no new
        connections arrive, then the batcher's queues are settled —
        *evaluated* on drain, failed with ``503`` on a hard stop — and
        only then are connection handlers (which still need the event
        loop to write those final responses) waited on and reaped.
        Closing transports before settling the queues is exactly the
        hung-keep-alive bug this ordering exists to prevent.
        """
        started = time.perf_counter()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        flushed = 0
        if self.batcher is not None:
            if drain:
                flushed = await self.batcher.drain()
            else:
                await self.batcher.close()
        # Busy handlers now hold resolved futures (results or 503s);
        # give them the drain budget to finish writing.
        deadline = (
            self.config.drain_timeout
            if drain
            else min(self.config.drain_timeout, 1.0)
        )
        if self._busy:
            try:
                await asyncio.wait_for(self._idle_event.wait(), deadline)
            except asyncio.TimeoutError:
                pass
        # Idle keep-alive handlers block in read forever; cancel them.
        for task in list(self._handler_tasks):
            task.cancel()
        if self._handler_tasks:
            await asyncio.gather(
                *self._handler_tasks, return_exceptions=True
            )
        self.registry.close()
        if drain:
            self.stats.note_drain(
                (time.perf_counter() - started) * 1e3, flushed
            )

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                self._busy += 1
                self._idle_event.clear()
                try:
                    self.stats.note_request()
                    response = await self._dispatch(request)
                    self.stats.note_response(response.status)
                    if self.config.worker_slot is not None:
                        response.headers.setdefault(
                            "X-Spire-Worker", str(self.config.worker_slot)
                        )
                    close = (
                        request.headers.get("connection", "").lower()
                        == "close"
                    )
                    writer.write(self._encode(response, close=close))
                    await writer.drain()
                finally:
                    self._busy -= 1
                    if not self._busy:
                        self._idle_event.set()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels in-flight handlers; ending normally keeps
            # the streams done-callback from logging the cancellation.
            pass
        finally:
            if task is not None:
                self._handler_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "_Request | None":
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target, _ = parts
        split = urlsplit(target)
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        headers: "dict[str, str]" = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = 0
        raw_length = headers.get("content-length")
        if raw_length is not None:
            try:
                length = int(raw_length)
            except ValueError:
                return None
        if length < 0:
            return None
        if length > self.config.max_body:
            # Drain nothing; answer 413 and close the connection.
            return _Request(method, split.path, query, headers, b"\x00")
        body = await reader.readexactly(length) if length else b""
        return _Request(method, split.path, query, headers, body)

    def _encode(self, response: _Response, close: bool) -> bytes:
        body = json.dumps(response.payload).encode("utf-8")
        reason = _REASONS.get(response.status, "OK")
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        lines.append(f"Connection: {'close' if close else 'keep-alive'}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body

    # -- routing -------------------------------------------------------

    async def _dispatch(self, request: _Request) -> _Response:
        if len(request.body) > self.config.max_body or (
            request.body == b"\x00"
            and int(request.headers.get("content-length", 0) or 0)
            > self.config.max_body
        ):
            return _Response(413, {"error": "request body too large"})
        try:
            if request.path == "/health":
                if request.method != "GET":
                    return _Response(405, {"error": "use GET"})
                return self._health()
            if request.path == "/v1/models":
                if request.method != "GET":
                    return _Response(405, {"error": "use GET"})
                return _Response(200, {"models": self.registry.names()})
            if request.path in ("/v1/estimate", "/v1/analyze"):
                if request.method != "POST":
                    return _Response(405, {"error": "use POST"})
                return await self._estimate_route(
                    request, full=request.path == "/v1/analyze"
                )
            if request.path == "/v1/models/install":
                if request.method != "POST":
                    return _Response(405, {"error": "use POST"})
                return self._install_route(request)
            if self.config.debug_faults and request.path == "/debug/crash":
                return self._debug_crash()
            if self.config.debug_faults and request.path == "/debug/hang":
                return self._debug_hang(request)
            return _Response(404, {"error": f"no route {request.path!r}"})
        except ServeOverloadError as exc:
            status = 503 if exc.shed else 429
            return _Response(
                status,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": f"{max(exc.retry_after, 0.0):.3f}"},
            )
        except EstimationError as exc:
            return _Response(422, {"error": str(exc)})
        except _BadRequest as exc:
            return _Response(400, {"error": str(exc)})
        except DataError as exc:
            # Artifact-level failure: the request was well-formed but
            # the model could not be served (e.g. a corrupt packed
            # artifact was quarantined on reload).  503, not 500 — the
            # server itself is healthy and a reinstall fixes it.
            return _Response(
                503,
                {"error": str(exc)},
                headers={"Retry-After": f"{self.config.retry_after:.3f}"},
            )

    def _health(self) -> _Response:
        report = health_report()
        registry_snapshot = self.registry.snapshot()
        serve_state = self.stats.snapshot(registry_snapshot)
        serve_state["batcher"] = {
            "enabled": self.batcher is not None,
            "max_batch": self.config.max_batch,
            "window_ms": self.config.window * 1000.0,
            "queue_limit": self.config.queue_limit,
            "load_shed": self.config.load_shed,
            "queues": (
                self.batcher.queue_depths() if self.batcher is not None else {}
            ),
        }
        serve_state["admission"] = self.admission.snapshot()
        serve_state["rollover"] = self.rollover.snapshot()
        try:
            from repro.trace.wavefront import stats as wavefront_stats

            serve_state["hostility"] = wavefront_stats()
        except Exception:  # pragma: no cover - trace subsystem optional
            pass
        report.serve_state = serve_state
        return _Response(
            200,
            {
                "ok": report.ok,
                "health": report.to_dict(),
                "render": report.render(),
            },
        )

    # -- rollover / chaos routes ---------------------------------------

    def _install_route(self, request: _Request) -> _Response:
        """Hot-install a packed model artifact (stage/verify/canary/swap)."""
        content_type = request.headers.get("content-type", "").split(";")[0]
        if content_type != "application/octet-stream":
            raise _BadRequest(
                "install expects a packed .spm artifact as "
                "Content-Type: application/octet-stream"
            )
        name = request.query.get("model", "")
        if not name:
            raise _BadRequest(
                "install names the model in the query string (?model=...)"
            )
        try:
            event = self.rollover.install_packed(name, request.body)
        except DataError as exc:
            # A rejected artifact is a client-payload problem (422), not
            # a serving failure: the old model keeps serving untouched.
            return _Response(
                422,
                {"error": str(exc), "rollover": self.rollover.snapshot()},
            )
        return _Response(200, {"installed": name, "event": event.to_dict()})

    def _debug_crash(self) -> _Response:
        """Chaos route: hard-kill this worker shortly after responding."""
        loop = asyncio.get_running_loop()
        loop.call_later(0.05, os._exit, 70)
        return _Response(200, {"crashing": True})

    def _debug_hang(self, request: _Request) -> _Response:
        """Chaos route: wedge the event loop (heartbeats stop beating)."""
        try:
            seconds = float(request.query.get("seconds", "30") or 30.0)
        except ValueError:
            raise _BadRequest("'seconds' must be a number") from None
        seconds = min(max(seconds, 0.0), 120.0)
        time.sleep(seconds)  # deliberately synchronous: a real wedge
        return _Response(200, {"hung_for": seconds})

    # -- estimation routes ---------------------------------------------

    async def _estimate_route(
        self, request: _Request, full: bool
    ) -> _Response:
        name, array, quality, counts = self._decode_body(request)
        # Admission quotas come before any disk or lane work: a storm on
        # one model burns its own budget, not the server's.
        self.admission.admit(name)
        if not self.registry.has(name):
            return _Response(404, {"error": f"unknown model {name!r}"})
        estimate = await self._evaluate(name, array)
        payload = {
            "model": name,
            "throughput": estimate.throughput,
            "limiting_metric": estimate.limiting_metric,
            "per_metric": estimate.per_metric,
            "sample_counts": estimate.sample_counts,
            "skipped_metrics": estimate.skipped_metrics,
        }
        if full:
            areas = default_catalog().areas()
            payload["ranking"] = [
                {
                    "metric": entry.metric,
                    "estimate": entry.estimate,
                    "sample_count": entry.sample_count,
                    "area": areas.get(entry.metric, ""),
                }
                for entry in estimate.ranked()
            ]
            try:
                payload["measured_throughput"] = array.measured_throughput()
            except DataError:
                payload["measured_throughput"] = None
            if counts is not None:
                payload["tma"] = self._tma(counts)
        if quality is not None and not quality.ok:
            payload["quality"] = quality.summary()
        return _Response(200, payload)

    async def _evaluate(
        self, name: str, array: SampleArray
    ) -> EnsembleEstimate:
        if self.batcher is not None:
            return await self.batcher.submit(name, array)
        # Unbatched reference path: exactly the library call a client
        # would make locally (the bench's comparison baseline).
        model = self.registry.get(name)
        return model.estimate(array.to_sample_set())

    def _tma(self, counts: "dict[str, float]") -> dict:
        result = TopDownAnalyzer(skylake_gold_6126()).analyze(counts)
        walk = drilldown(result)
        return {
            "ipc": result.ipc,
            "level1": result.level1(),
            "main_bottleneck": result.main_bottleneck(),
            "drilldown": {
                "path": walk.path,
                "steps": [
                    {
                        "name": step.name,
                        "fraction": step.fraction,
                        "depth": step.depth,
                    }
                    for step in walk.steps
                ],
                "advice": walk.advice,
            },
        }

    # -- request decoding ----------------------------------------------

    def _decode_body(
        self, request: _Request
    ) -> "tuple[str, SampleArray, QualityReport | None, dict | None]":
        content_type = request.headers.get("content-type", "").split(";")[0]
        if content_type in ("text/csv", "text/plain"):
            return self._decode_csv(request)
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        name = payload.get("model")
        if not isinstance(name, str) or not name:
            raise _BadRequest("missing required field 'model'")
        counts = payload.get("counts")
        if counts is not None and not isinstance(counts, dict):
            raise _BadRequest("'counts' must map event names to totals")
        try:
            if "columns" in payload:
                array = self._decode_columns(payload["columns"])
                return name, array, None, counts
            records = payload.get("samples")
            if not isinstance(records, list):
                raise _BadRequest(
                    "body needs 'samples' (record list) or 'columns'"
                )
            if payload.get("screen"):
                array, quality = self._screen_records(records)
                return name, array, quality, counts
            return (
                name,
                SampleArray.from_records(records, validate=True),
                None,
                counts,
            )
        except DataError as exc:
            raise _BadRequest(str(exc)) from None

    @staticmethod
    def _decode_columns(columns) -> SampleArray:
        if not isinstance(columns, dict):
            raise _BadRequest("'columns' must be an object")
        try:
            metrics = columns["metrics"]
            time = columns["time"]
            work = columns["work"]
            metric_count = columns["metric_count"]
        except KeyError as missing:
            raise _BadRequest(
                f"'columns' is missing field {missing}"
            ) from None
        if not (
            len(metrics) == len(time) == len(work) == len(metric_count)
        ):
            raise _BadRequest("'columns' arrays must share one length")
        array = SampleArray.from_lists(
            [str(m) for m in metrics], time, work, metric_count
        )
        array.validate()
        return array

    def _screen_records(
        self, records: "list[dict]"
    ) -> "tuple[SampleArray, QualityReport]":
        """The streaming front door: timestamp screen, then sanitizer."""
        quality = QualityReport()
        kept, quality = TimestampScreen().screen(records, quality)
        clean, report = SampleSanitizer(min_samples_per_metric=1).sanitize(
            kept
        )
        quality.kept -= len(report.quarantined)
        quality.quarantined.extend(report.quarantined)
        return clean.columns(), quality

    def _decode_csv(
        self, request: _Request
    ) -> "tuple[str, SampleArray, QualityReport, None]":
        name = request.query.get("model", "")
        if not name:
            raise _BadRequest(
                "CSV requests name the model in the query string (?model=...)"
            )
        try:
            text = request.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise _BadRequest(f"CSV body is not UTF-8: {exc}") from None
        quality = QualityReport()
        sample_set = self._parser.parse(text, lenient=True, quality=quality)
        if not sample_set:
            raise _BadRequest(
                "no usable perf intervals: need both "
                f"{self.config.work_event!r} and {self.config.time_event!r} "
                "per interval"
            )
        clean, report = SampleSanitizer(min_samples_per_metric=1).sanitize(
            sample_set
        )
        quality.kept -= len(report.quarantined)
        quality.quarantined.extend(report.quarantined)
        return name, clean.columns(), quality, None


class _BadRequest(SpireError):
    """A malformed request body or missing required field (HTTP 400)."""
