"""Adaptive micro-batching: fuse concurrent requests into one evaluation.

A SPIRE server spends most of a small request's budget on fixed per-call
overhead: one ``group_indices`` argsort plus one ``estimate_batch`` and
one ``time_weighted_mean`` *per metric* — dozens of tiny NumPy calls for
a typical 60-metric request.  :func:`batch_estimate` amortizes that
across concurrent requests by concatenating their :class:`SampleArray`
columns, sorting the fused rows once by ``(metric, request)``, running
one ``estimate_batch`` per *metric* over all requests' rows at once, and
reducing each ``(request, metric)`` segment with a positional wavefront.

Bit-identity contract
---------------------
The scattered per-request results are bit-identical to what each request
would get from :meth:`SpireModel.estimate
<repro.core.ensemble.SpireModel.estimate>` alone:

- roofline evaluation is elementwise, so batching rows across requests
  cannot change any row's estimate;
- the stable ``(metric, request)`` lexsort preserves original row order
  inside every segment, matching ``group_indices``'s ascending rows;
- Eq. 1's sums accumulate **left to right** (``np.cumsum``, not
  ``np.sum``'s pairwise tree), and ``np.add.reduceat`` does *not*
  reproduce that order.  The positional wavefront does: iteration ``k``
  adds every segment's ``k``-th row into its accumulator, vectorized
  across segments but strictly sequential within each, so every segment
  reduces exactly as its own ``np.cumsum`` would.

Dispatch runs through the ``serve.batch_estimate`` kernel guard: sampled
calls replay every request in the batch through the retained scalar
per-request path and compare to tolerance; a divergence trips the server
back to per-request evaluation for the rest of the process.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Awaitable, Callable, Sequence

import numpy as np

from repro.core.columns import SampleArray
from repro.core.ensemble import EnsembleEstimate, SpireModel
from repro.errors import EstimationError, ServeOverloadError, SpireError
from repro.fastpath import force_scalar
from repro.guard.dispatch import approx_equal, kernel_guard
from repro.guard.guardrails import check_estimates

__all__ = ["KERNEL", "MicroBatcher", "batch_estimate", "fused_estimate"]

KERNEL = "serve.batch_estimate"

#: The tuple shape shared with the per-request estimator internals:
#: ``(per_metric, sample_counts, skipped_metrics)``.
_EstimateTuple = tuple

_NO_COVERAGE = "none of the sample metrics are covered by this model"
_EMPTY = "cannot estimate from an empty sample set"


def _segment_ordered_sums(
    values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Left-to-right sum of each contiguous segment (positional wavefront).

    Iteration ``k`` folds every segment's ``k``-th element into its
    accumulator: vectorized across segments, sequential within each, so
    the result is bit-identical to ``np.cumsum(segment)[-1]`` per
    segment.  Cost is O(longest segment) vectorized adds instead of one
    Python-level reduction per segment.
    """
    totals = np.zeros(len(starts), dtype=np.float64)
    if not len(starts):
        return totals
    totals[:] = values[starts]  # k = 0: every segment has at least one row
    for k in range(1, int(lengths.max())):
        live = np.flatnonzero(lengths > k)
        if not len(live):  # pragma: no cover - max() guarantees live rows
            break
        totals[live] += values[starts[live] + k]
    return totals


def fused_estimate(
    model: SpireModel, arrays: Sequence[SampleArray]
) -> "list[_EstimateTuple]":
    """One fused evaluation of many requests (the fast kernel).

    Returns one ``(per_metric, sample_counts, skipped_metrics)`` tuple
    per request — the same shape the per-request estimator internals
    produce, with dict/list entries in the request's own first-seen
    metric order.  An all-uncovered request yields an empty
    ``per_metric``; the caller maps that to the per-request error.
    """
    lengths = [len(a) for a in arrays]
    fused = SampleArray.concat(list(arrays))
    request = np.repeat(np.arange(len(arrays)), lengths)

    # Stable sort by (metric, request): rows of one (request, metric)
    # pair stay in original ascending order — exactly the rows (and row
    # order) group_indices() hands the per-request path.
    order = np.lexsort((request, fused.metric_ids))
    sorted_metric = fused.metric_ids[order]
    sorted_request = request[order]
    intensity = fused.intensity[order]
    times = fused.time[order]

    n = len(order)
    changed = np.flatnonzero(
        (np.diff(sorted_metric) != 0) | (np.diff(sorted_request) != 0)
    ) + 1
    seg_starts = np.concatenate(([0], changed))
    seg_lengths = np.diff(np.append(seg_starts, n))
    seg_metric = sorted_metric[seg_starts]
    seg_request = sorted_request[seg_starts]
    # Original fused position of each segment's first row: within one
    # request those positions order its metrics first-seen.
    seg_first_pos = order[seg_starts]

    # Metric runs are contiguous (primary sort key): one estimate_batch
    # per covered metric over every request's rows for it at once.
    names = fused.metric_names
    estimates = np.zeros(n, dtype=np.float64)
    covered = np.zeros(len(names), dtype=bool)
    metric_changed = np.flatnonzero(np.diff(sorted_metric) != 0) + 1
    run_starts = np.concatenate(([0], metric_changed))
    run_ends = np.append(metric_changed, n)
    for start, end in zip(run_starts, run_ends):
        ident = int(sorted_metric[start])
        name = names[ident]
        if name not in model:
            continue
        covered[ident] = True
        estimates[start:end] = model.roofline(name).estimate_batch(
            intensity[start:end], validated=True
        )

    seg_covered = covered[seg_metric]
    live_starts = seg_starts[seg_covered]
    live_lengths = seg_lengths[seg_covered]
    numerators = _segment_ordered_sums(estimates * times, live_starts, live_lengths)
    denominators = _segment_ordered_sums(times, live_starts, live_lengths)
    seg_value = np.zeros(len(seg_starts), dtype=np.float64)
    seg_value[seg_covered] = numerators / denominators

    # Scatter: per request, walk its segments in first-seen metric order.
    scatter = np.lexsort((seg_first_pos, seg_request))
    results: "list[_EstimateTuple]" = [
        ({}, {}, []) for _ in range(len(arrays))
    ]
    values = seg_value.tolist()
    counts_list = seg_lengths.tolist()
    covered_list = seg_covered.tolist()
    for seg in scatter.tolist():
        per_metric, counts, skipped = results[int(seg_request[seg])]
        name = names[int(seg_metric[seg])]
        if covered_list[seg]:
            per_metric[name] = values[seg]
            counts[name] = counts_list[seg]
        else:
            skipped.append(name)
    return results


def _finalize(
    tuples: "list[_EstimateTuple | EstimationError]",
) -> "list[EnsembleEstimate | EstimationError]":
    """Per-request guardrails and EnsembleEstimate construction."""
    out: "list[EnsembleEstimate | EstimationError]" = []
    for item in tuples:
        if isinstance(item, EstimationError):
            out.append(item)
            continue
        per_metric, counts, skipped = item
        if not per_metric:
            out.append(EstimationError(_NO_COVERAGE))
            continue
        check_estimates(per_metric)
        out.append(
            EnsembleEstimate(
                per_metric=per_metric,
                sample_counts=counts,
                skipped_metrics=skipped,
            )
        )
    return out


def _per_request(
    model: SpireModel, array: SampleArray
) -> "EnsembleEstimate | EstimationError":
    """The unfused reference: exactly what a lone request would get."""
    try:
        return model.estimate(array.to_sample_set())
    except EstimationError as exc:
        return exc


def batch_estimate(
    model: SpireModel, arrays: Sequence[SampleArray]
) -> "list[EnsembleEstimate | EstimationError]":
    """Evaluate many requests through one fused pass, guarded.

    Per-request failures (empty request, no covered metric) come back as
    :class:`EstimationError` entries instead of raising, so one bad
    request never fails its batch-mates.  The sampled oracle replays
    every request through the scalar per-request path under
    :func:`~repro.fastpath.force_scalar`; the tripped (or forced-scalar)
    state serves each request through plain per-request estimation.
    """
    if not arrays:
        return []
    guard = kernel_guard(KERNEL)
    if not guard.use_fast():
        return [_per_request(model, array) for array in arrays]

    empty = [index for index, array in enumerate(arrays) if not len(array)]
    dense = [array for array in arrays if len(array)]

    def assemble(tuples: "list[_EstimateTuple]"):
        merged: "list[_EstimateTuple | EstimationError]" = []
        cursor = iter(tuples)
        for index in range(len(arrays)):
            if index in empty_set:
                merged.append(EstimationError(_EMPTY))
            else:
                merged.append(next(cursor))
        return _finalize(merged)

    empty_set = set(empty)
    if not guard.should_check():
        return assemble(fused_estimate(model, dense) if dense else [])

    fast = fused_estimate(model, dense) if dense else []
    with force_scalar():
        expected = [
            model._estimate_scalar(array.to_sample_set(), False)
            for array in dense
        ]
    try:
        ok = bool(approx_equal(fast, expected))
    except Exception:  # a comparison crash is itself a divergence
        ok = False
    if guard.resolve(ok, detail=f"{len(dense)} fused request(s)"):
        return assemble(fast)
    return assemble(expected)


class MicroBatcher:
    """Deadline- and size-triggered request coalescing, one lane per model.

    A request enqueues its :class:`SampleArray` on its model's lane and
    awaits a future.  The lane's runner coroutine drains up to
    ``max_batch`` requests per pass, waiting at most ``window`` seconds
    after the first pending request before evaluating — under load the
    size trigger fires first and batches run full; when idle the
    deadline keeps added latency bounded at one window.

    Backpressure: a lane whose queue holds ``queue_limit`` requests
    either rejects the newcomer (``load_shed="reject"``, the HTTP 429
    path) or evicts its oldest queued request (``load_shed="oldest"``,
    favoring fresh arrivals when clients time out and retry anyway).
    """

    def __init__(
        self,
        resolve: "Callable[[str], SpireModel]",
        max_batch: int = 64,
        window: float = 0.002,
        queue_limit: int = 256,
        load_shed: str = "reject",
        retry_after: float = 0.05,
        stats=None,
    ):
        if max_batch < 1:
            raise SpireError("max_batch must be at least 1")
        if queue_limit < 1:
            raise SpireError("queue_limit must be at least 1")
        if load_shed not in ("reject", "oldest"):
            raise SpireError(
                f"load_shed must be reject|oldest, got {load_shed!r}"
            )
        self._resolve = resolve
        self.max_batch = max_batch
        self.window = window
        self.queue_limit = queue_limit
        self.load_shed = load_shed
        self.retry_after = retry_after
        self.stats = stats
        self._lanes: "dict[str, _Lane]" = {}
        self._closed = False

    # -- introspection -------------------------------------------------

    def queue_depths(self) -> "dict[str, int]":
        return {name: len(lane.queue) for name, lane in self._lanes.items()}

    # -- request path --------------------------------------------------

    async def submit(self, model_name: str, array: SampleArray):
        """Enqueue one request; returns its :class:`EnsembleEstimate`.

        Raises :class:`EstimationError` for per-request failures and
        :class:`ServeOverloadError` under backpressure.
        """
        if self._closed:
            raise ServeOverloadError(
                "server is shutting down",
                retry_after=self.retry_after,
                shed=True,
            )
        lane = self._lanes.get(model_name)
        if lane is None:
            lane = _Lane(model_name)
            self._lanes[model_name] = lane
            lane.task = asyncio.ensure_future(self._run_lane(lane))
        if len(lane.queue) >= self.queue_limit:
            if self.load_shed == "reject":
                if self.stats is not None:
                    self.stats.note_rejected()
                raise ServeOverloadError(
                    f"queue for model {model_name!r} is full "
                    f"({self.queue_limit} pending)",
                    retry_after=self.retry_after,
                )
            victim = lane.queue.popleft()
            if not victim.future.done():
                victim.future.set_exception(
                    ServeOverloadError(
                        "request shed under load (oldest-first policy)",
                        retry_after=self.retry_after,
                        shed=True,
                    )
                )
            if self.stats is not None:
                self.stats.note_shed()
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        lane.queue.append(_Pending(array, future, loop.time()))
        if self.stats is not None:
            self.stats.note_queue_depth(len(lane.queue))
        lane.event.set()
        return await future

    # -- lane runner ---------------------------------------------------

    async def _run_lane(self, lane: "_Lane") -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not lane.queue:
                if self._closed:
                    return
                lane.event.clear()
                if lane.queue or self._closed:  # raced with a set()
                    continue
                await lane.event.wait()
                continue
            if not self._closed:
                # Normal operation: wait out the batching window unless
                # the size trigger (or a drain) fires first.  A draining
                # batcher skips the wait entirely and flushes the queue
                # in full-batch passes.
                deadline = lane.queue[0].enqueued + self.window
                while len(lane.queue) < self.max_batch and not self._closed:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    lane.event.clear()
                    try:
                        await asyncio.wait_for(lane.event.wait(), remaining)
                    except asyncio.TimeoutError:
                        break
            batch = [
                lane.queue.popleft()
                for _ in range(min(self.max_batch, len(lane.queue)))
            ]
            if self.stats is not None:
                self.stats.note_batch(len(batch))
            try:
                model = self._resolve(lane.name)
            except SpireError as exc:
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
                continue
            results = batch_estimate(model, [p.array for p in batch])
            for pending, result in zip(batch, results):
                if pending.future.done():
                    continue  # the client went away mid-batch
                if isinstance(result, Exception):
                    pending.future.set_exception(result)
                else:
                    pending.future.set_result(result)

    async def drain(self) -> int:
        """Flush every queued request through evaluation, then shut down.

        The graceful half of shutdown: new submissions are refused
        (``503``) immediately, but everything already queued is
        evaluated — lane runners skip the batching window and burn down
        their queues in full-batch passes.  Returns the number of
        requests flushed this way.
        """
        self._closed = True
        flushed = sum(len(lane.queue) for lane in self._lanes.values())
        for lane in self._lanes.values():
            lane.event.set()
        tasks = [lane.task for lane in self._lanes.values() if lane.task]
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._lanes.clear()
        return flushed

    async def close(self) -> None:
        """Cancel lane runners and fail anything still queued with 503.

        The hard half of shutdown: queued requests get an immediate
        ``ServeOverloadError`` with ``shed=True`` (the HTTP ``503``
        path) instead of hanging on a keep-alive connection that will
        never answer.
        """
        self._closed = True
        for lane in self._lanes.values():
            if lane.task is not None:
                lane.task.cancel()
            while lane.queue:
                pending = lane.queue.popleft()
                if not pending.future.done():
                    pending.future.set_exception(
                        ServeOverloadError(
                            "server is shutting down",
                            retry_after=self.retry_after,
                            shed=True,
                        )
                    )
        tasks = [lane.task for lane in self._lanes.values() if lane.task]
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._lanes.clear()


class _Pending:
    __slots__ = ("array", "future", "enqueued")

    def __init__(self, array, future, enqueued):
        self.array = array
        self.future = future
        self.enqueued = enqueued


class _Lane:
    __slots__ = ("name", "queue", "event", "task")

    def __init__(self, name: str):
        self.name = name
        self.queue: "deque[_Pending]" = deque()
        self.event = asyncio.Event()
        self.task: "asyncio.Task | None" = None
