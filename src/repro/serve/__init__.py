"""SPIRE model serving: micro-batched asyncio HTTP inference.

The serving layer (PR 9) turns trained models into a long-running
endpoint:

- :mod:`repro.serve.batching` — the adaptive micro-batcher and the
  ``serve.batch_estimate`` guarded kernel: concurrent requests fuse into
  one columnar evaluation, scattered back bit-identically to the
  per-request path;
- :mod:`repro.serve.registry` — packed ``.spm`` artifacts with integrity
  headers, mmap zero-copy reloads, per-model LRU residency;
- :mod:`repro.serve.server` — the stdlib-asyncio HTTP/JSON front door
  (``spire serve``), with bounded queues, 429 + ``Retry-After``
  backpressure and a probe-able ``/health``;
- :mod:`repro.serve.stats` — long-lived-process counters surfaced
  through :class:`~repro.guard.health.HealthReport.serve_state`.
"""

from repro.serve.batching import MicroBatcher, batch_estimate, fused_estimate
from repro.serve.registry import ModelRegistry, map_model, pack_model
from repro.serve.server import ServeConfig, SpireServer
from repro.serve.stats import ServeStats

__all__ = [
    "MicroBatcher",
    "ModelRegistry",
    "ServeConfig",
    "ServeStats",
    "SpireServer",
    "batch_estimate",
    "fused_estimate",
    "map_model",
    "pack_model",
]
