"""SPIRE model serving: micro-batched, supervised HTTP inference.

The serving layer (PR 9) turns trained models into a long-running
endpoint; PR 10 makes that endpoint survivable:

- :mod:`repro.serve.batching` — the adaptive micro-batcher and the
  ``serve.batch_estimate`` guarded kernel: concurrent requests fuse into
  one columnar evaluation, scattered back bit-identically to the
  per-request path;
- :mod:`repro.serve.registry` — packed ``.spm`` artifacts with integrity
  headers, mmap zero-copy reloads, per-model LRU residency and
  single-flight concurrent loads;
- :mod:`repro.serve.server` — the stdlib-asyncio HTTP/JSON front door
  (``spire serve``), with bounded queues, 429 + ``Retry-After``
  backpressure, graceful drain and a probe-able ``/health``;
- :mod:`repro.serve.quotas` — deterministic token-bucket admission
  control, per model, surfaced as clean 429s;
- :mod:`repro.serve.rollover` — hot model installs: stage, verify,
  canary, atomic swap; corrupt artifacts are quarantined, never served;
- :mod:`repro.serve.supervisor` — the multi-worker parent: forks N
  workers sharing one port, restarts crashed/wedged workers with
  exponential backoff, marks flapping slots stale;
- :mod:`repro.serve.chaos` — the serve-layer fault harness behind
  ``spire faultsim --serve``;
- :mod:`repro.serve.stats` — long-lived-process counters surfaced
  through :class:`~repro.guard.health.HealthReport.serve_state`.
"""

from repro.serve.batching import MicroBatcher, batch_estimate, fused_estimate
from repro.serve.chaos import ChaosHarness, run_serve_chaos
from repro.serve.quotas import AdmissionController, QuotaPolicy, TokenBucket
from repro.serve.registry import ModelRegistry, map_model, pack_model
from repro.serve.rollover import RolloverEvent, RolloverManager
from repro.serve.server import ServeConfig, SpireServer
from repro.serve.stats import ServeStats
from repro.serve.supervisor import (
    ServeSupervisor,
    SupervisorConfig,
    backoff_delay,
)

__all__ = [
    "AdmissionController",
    "ChaosHarness",
    "MicroBatcher",
    "ModelRegistry",
    "QuotaPolicy",
    "RolloverEvent",
    "RolloverManager",
    "ServeConfig",
    "ServeStats",
    "ServeSupervisor",
    "SpireServer",
    "SupervisorConfig",
    "TokenBucket",
    "backoff_delay",
    "batch_estimate",
    "fused_estimate",
    "map_model",
    "pack_model",
    "run_serve_chaos",
]
