"""Long-lived-process counters for a running SPIRE server.

Batch runs summarize themselves once at exit; a server never exits, so
its operational state has to be *probe-able*.  :class:`ServeStats`
accumulates the counters the micro-batcher and HTTP layer emit —
requests served, micro-batch fill, backpressure decisions — and
:meth:`ServeStats.snapshot` renders them (together with the model
registry's own snapshot) into the ``serve_state`` dict that rides on
:class:`~repro.guard.health.HealthReport` for ``GET /health`` and
``spire doctor --serve-url``.
"""

from __future__ import annotations

import threading

__all__ = ["ServeStats"]

#: Histogram bucket upper bounds for micro-batch fill (requests fused
#: per evaluation).  The last bucket is open-ended.
FILL_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class ServeStats:
    """Counters a running server accumulates; snapshot-safe from any thread."""

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.responses = 0
        self.errors = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_fill = 0
        self.rejected = 0
        self.shed = 0
        self.queue_high_water = 0
        self._fill_histogram = [0] * (len(FILL_BUCKETS) + 1)

    # -- HTTP layer ----------------------------------------------------

    def note_request(self) -> None:
        with self._lock:
            self.requests += 1

    def note_response(self, status: int) -> None:
        with self._lock:
            self.responses += 1
            if status >= 400:
                self.errors += 1

    # -- micro-batcher -------------------------------------------------

    def note_batch(self, fill: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += fill
            if fill > self.max_fill:
                self.max_fill = fill
            for bucket, bound in enumerate(FILL_BUCKETS):
                if fill <= bound:
                    self._fill_histogram[bucket] += 1
                    break
            else:
                self._fill_histogram[-1] += 1

    def note_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self.queue_high_water:
                self.queue_high_water = depth

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def note_shed(self) -> None:
        with self._lock:
            self.shed += 1

    # -- reporting -----------------------------------------------------

    def snapshot(self, registry_snapshot: "dict | None" = None) -> dict:
        """The ``serve_state`` payload for health reports.

        Key names are a contract with
        :meth:`repro.guard.health.HealthReport.render`.
        """
        with self._lock:
            labels = [f"<={bound}" for bound in FILL_BUCKETS] + [
                f">{FILL_BUCKETS[-1]}"
            ]
            mean_fill = (
                self.batched_requests / self.batches if self.batches else 0.0
            )
            return {
                "requests": self.requests,
                "responses": self.responses,
                "errors": self.errors,
                "batches": self.batches,
                "batch_fill": {
                    "mean": mean_fill,
                    "max": self.max_fill,
                    "histogram": dict(zip(labels, self._fill_histogram)),
                },
                "backpressure": {
                    "rejected": self.rejected,
                    "shed": self.shed,
                    "queue_high_water": self.queue_high_water,
                },
                "registry": dict(registry_snapshot or {}),
            }
