"""Long-lived-process counters for a running SPIRE server.

Batch runs summarize themselves once at exit; a server never exits, so
its operational state has to be *probe-able*.  :class:`ServeStats`
accumulates the counters the micro-batcher and HTTP layer emit —
requests served, micro-batch fill, backpressure decisions — and
:meth:`ServeStats.snapshot` renders them (together with the model
registry's own snapshot) into the ``serve_state`` dict that rides on
:class:`~repro.guard.health.HealthReport` for ``GET /health`` and
``spire doctor --serve-url``.
"""

from __future__ import annotations

import threading

__all__ = ["ServeStats"]

#: Histogram bucket upper bounds for micro-batch fill (requests fused
#: per evaluation).  The last bucket is open-ended.
FILL_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class ServeStats:
    """Counters a running server accumulates; snapshot-safe from any thread."""

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.responses = 0
        self.errors = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_fill = 0
        self.rejected = 0
        self.shed = 0
        self.queue_high_water = 0
        self._fill_histogram = [0] * (len(FILL_BUCKETS) + 1)
        # Admission quotas (repro.serve.quotas).
        self.quota_rejected = 0
        self._quota_by_model: "dict[str, int]" = {}
        # Registry lock contention (single-flight cold loads).
        self.lock_contention = 0
        # Graceful-drain accounting (SpireServer.stop(drain=True)).
        self.drains = 0
        self.last_drain_ms = 0.0
        self.drain_flushed = 0
        # Supervised-fleet snapshot pushed over the heartbeat pipe; None
        # for a standalone (unsupervised) server.
        self.worker_slot: "int | None" = None
        self._fleet: "dict | None" = None

    # -- HTTP layer ----------------------------------------------------

    def note_request(self) -> None:
        with self._lock:
            self.requests += 1

    def note_response(self, status: int) -> None:
        with self._lock:
            self.responses += 1
            if status >= 400:
                self.errors += 1

    # -- micro-batcher -------------------------------------------------

    def note_batch(self, fill: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += fill
            if fill > self.max_fill:
                self.max_fill = fill
            for bucket, bound in enumerate(FILL_BUCKETS):
                if fill <= bound:
                    self._fill_histogram[bucket] += 1
                    break
            else:
                self._fill_histogram[-1] += 1

    def note_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self.queue_high_water:
                self.queue_high_water = depth

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def note_shed(self) -> None:
        with self._lock:
            self.shed += 1

    # -- admission quotas ----------------------------------------------

    def note_quota_rejected(self, model: str) -> None:
        with self._lock:
            self.quota_rejected += 1
            self._quota_by_model[model] = (
                self._quota_by_model.get(model, 0) + 1
            )

    # -- registry single-flight ----------------------------------------

    def note_lock_contention(self) -> None:
        """A cold load found another caller already verifying+mapping."""
        with self._lock:
            self.lock_contention += 1

    # -- lifecycle -----------------------------------------------------

    def note_drain(self, duration_ms: float, flushed: int) -> None:
        with self._lock:
            self.drains += 1
            self.last_drain_ms = duration_ms
            self.drain_flushed += flushed

    # -- supervised fleet ----------------------------------------------

    def set_fleet(self, snapshot: "dict | None") -> None:
        """Adopt the supervisor's latest fleet snapshot (worker side)."""
        with self._lock:
            self._fleet = snapshot

    def beat_payload(self) -> dict:
        """The light per-worker counters a heartbeat carries upstream."""
        with self._lock:
            return {
                "requests": self.requests,
                "errors": self.errors,
                "quota_rejected": self.quota_rejected,
                "rejected": self.rejected,
                "shed": self.shed,
            }

    # -- reporting -----------------------------------------------------

    def snapshot(self, registry_snapshot: "dict | None" = None) -> dict:
        """The ``serve_state`` payload for health reports.

        Key names are a contract with
        :meth:`repro.guard.health.HealthReport.render`.
        """
        with self._lock:
            labels = [f"<={bound}" for bound in FILL_BUCKETS] + [
                f">{FILL_BUCKETS[-1]}"
            ]
            mean_fill = (
                self.batched_requests / self.batches if self.batches else 0.0
            )
            payload = {
                "requests": self.requests,
                "responses": self.responses,
                "errors": self.errors,
                "batches": self.batches,
                "batch_fill": {
                    "mean": mean_fill,
                    "max": self.max_fill,
                    "histogram": dict(zip(labels, self._fill_histogram)),
                },
                "backpressure": {
                    "rejected": self.rejected,
                    "shed": self.shed,
                    "queue_high_water": self.queue_high_water,
                },
                "quotas": {
                    "rejected": self.quota_rejected,
                    "per_model": dict(self._quota_by_model),
                },
                "lock_contention": self.lock_contention,
                "drain": {
                    "count": self.drains,
                    "last_ms": self.last_drain_ms,
                    "flushed": self.drain_flushed,
                },
                "registry": dict(registry_snapshot or {}),
            }
            if self.worker_slot is not None:
                payload["worker"] = self.worker_slot
            if self._fleet is not None:
                payload["fleet"] = dict(self._fleet)
            return payload
