"""Supervised multi-worker serving: fork, monitor, restart, rollover.

One :class:`ServeSupervisor` parent owns the port and N forked
:class:`~repro.serve.server.SpireServer` workers share it:

- **Port sharing.**  The parent claims the port with a bound (never
  listening) ``SO_REUSEPORT`` socket — holding the reservation so a
  crashed worker's port cannot be stolen between restarts — and each
  worker binds its own listening socket with ``reuse_port=True``; the
  kernel load-balances accepted connections across the group.  Where
  ``SO_REUSEPORT`` is unavailable the parent binds one *listening*
  socket before forking and every worker serves on the inherited fd.
- **Supervision.**  Each worker heartbeats over a duplex
  :func:`multiprocessing.Pipe`.  A dead process (crash, ``os._exit``,
  SIGKILL) is detected by liveness; a *wedged* process (event loop
  blocked, heartbeats silent past ``heartbeat_timeout``) is killed.
  Either way the slot restarts after a deterministic exponential
  backoff (``backoff_base * 2^attempt``, capped at ``backoff_cap``).
  A slot that restarts more than ``max_restarts`` times inside
  ``flap_window`` seconds is *flapping*: the supervisor marks it stale
  and stops restarting it — the survivors keep serving and ``spire
  doctor --serve-url`` reports the degraded fleet.
- **Rollover propagation.**  A worker that hot-installs a model
  (``POST /v1/models/install``) notifies the parent, which broadcasts
  ``reload`` to its peers; they drop their resident copy and remap the
  swapped artifact from the shared store on their next request.
- **Drain.**  ``stop(drain=True)`` (and SIGTERM in the CLI) tells every
  worker to flush its batcher queues and finish in-flight responses
  before exiting; stragglers are escalated to SIGTERM then SIGKILL.

The monitor is synchronous — ``step()`` advances it one poll cycle so
tests and the chaos harness can drive supervision deterministically,
and ``run()`` loops ``step()`` for the CLI.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from multiprocessing import get_context

from repro.errors import SpireError
from repro.serve.server import ServeConfig

__all__ = ["ServeSupervisor", "SupervisorConfig"]


@dataclass
class SupervisorConfig:
    """Knobs for the supervision loop (see ``docs/serving.md``)."""

    workers: int = 2
    heartbeat_interval: float = 0.25   # worker beat period (seconds)
    heartbeat_timeout: float = 3.0     # silent longer than this = wedged
    backoff_base: float = 0.1          # first restart delay (seconds)
    backoff_cap: float = 2.0           # restart delay ceiling
    max_restarts: int = 5              # inside flap_window before stale
    flap_window: float = 30.0
    start_timeout: float = 15.0        # waiting for a worker's "ready"
    drain_timeout: float = 5.0
    fleet_refresh: float = 1.0         # fleet-snapshot broadcast period

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise SpireError("supervisor needs at least one worker")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise SpireError("heartbeat intervals must be positive")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise SpireError(
                "backoff_base must be positive and backoff_cap >= base"
            )
        if self.max_restarts < 1:
            raise SpireError("max_restarts must be at least 1")


def backoff_delay(config: SupervisorConfig, attempt: int) -> float:
    """Deterministic exponential backoff for restart ``attempt`` (0-based)."""
    return min(config.backoff_base * (2.0 ** attempt), config.backoff_cap)


class _Slot:
    """One worker position: process, pipe, and restart bookkeeping."""

    __slots__ = (
        "index", "process", "conn", "ready", "last_beat", "beats",
        "restarts", "restart_count", "stale", "pending_restart_at",
        "down_since", "started_at",
    )

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.ready = False
        self.last_beat = 0.0
        self.beats: dict = {}
        self.restarts: "deque[float]" = deque()
        self.restart_count = 0
        self.stale = False
        self.pending_restart_at: "float | None" = None
        self.down_since: "float | None" = None
        self.started_at = 0.0


def _safe_send(conn, message) -> bool:
    try:
        conn.send(message)
        return True
    except (BrokenPipeError, OSError, ValueError):
        return False


class ServeSupervisor:
    """Parent process: owns the port, forks workers, restarts the dead."""

    def __init__(
        self,
        serve_config: ServeConfig,
        config: "SupervisorConfig | None" = None,
    ):
        self.serve_config = serve_config
        self.config = config or SupervisorConfig()
        self.slots = [_Slot(i) for i in range(self.config.workers)]
        self.events: "list[dict]" = []
        self.rollovers: "list[str]" = []
        self.port = serve_config.port
        self.reuse_port = False
        self._claim_sock: "socket.socket | None" = None
        self._listen_sock: "socket.socket | None" = None
        self._ctx = get_context("fork")
        self._last_fleet_push = 0.0
        self._stopped = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Claim the port and fork every worker slot."""
        self._claim_port()
        for slot in self.slots:
            self._spawn(slot)

    def wait_ready(self, timeout: "float | None" = None) -> None:
        """Block until every non-stale worker reported ``ready``."""
        budget = timeout if timeout is not None else self.config.start_timeout
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            self.step(timeout=0.05)
            if all(s.ready or s.stale for s in self.slots):
                return
        pending = [s.index for s in self.slots if not (s.ready or s.stale)]
        raise SpireError(
            f"worker slot(s) {pending} not ready within {budget:.1f}s"
        )

    def _claim_port(self) -> None:
        host = self.serve_config.host
        if hasattr(socket, "SO_REUSEPORT"):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                sock.bind((host, self.serve_config.port))
            except OSError:
                sock.close()
            else:
                # Bound but never listening: holds the reservation (and
                # resolves port 0) without stealing any connections from
                # the workers' listening sockets in the group.
                self._claim_sock = sock
                self.port = sock.getsockname()[1]
                self.reuse_port = True
                return
        # Fallback: one listening socket, fork-inherited by all workers.
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, self.serve_config.port))
        sock.listen(128)
        sock.set_inheritable(True)
        self._listen_sock = sock
        self.port = sock.getsockname()[1]
        self.reuse_port = False

    def _worker_config(self, slot: _Slot) -> ServeConfig:
        if self.reuse_port:
            return dataclasses.replace(
                self.serve_config,
                port=self.port,
                reuse_port=True,
                sock=None,
                worker_slot=slot.index,
            )
        return dataclasses.replace(
            self.serve_config,
            port=self.port,
            reuse_port=False,
            sock=self._listen_sock,
            worker_slot=slot.index,
        )

    def _spawn(self, slot: _Slot) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(self._worker_config(slot), self.config, child_conn),
            daemon=True,
            name=f"spire-serve-worker-{slot.index}",
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.ready = False
        slot.pending_restart_at = None
        slot.last_beat = time.monotonic()
        slot.started_at = time.monotonic()

    # -- the monitor ---------------------------------------------------

    def step(self, timeout: "float | None" = None) -> None:
        """One poll cycle: drain pipes, reap the dead, honor backoffs."""
        wait_for = (
            timeout if timeout is not None else self.config.heartbeat_interval
        )
        conns = [s.conn for s in self.slots if s.conn is not None]
        if conns:
            for conn in mp_connection.wait(conns, wait_for):
                slot = next(s for s in self.slots if s.conn is conn)
                self._drain_conn(slot)
        elif wait_for:
            time.sleep(min(wait_for, 0.05))
        now = time.monotonic()
        for slot in self.slots:
            if slot.stale:
                continue
            if slot.pending_restart_at is not None:
                if now >= slot.pending_restart_at:
                    self._spawn(slot)
                continue
            process = slot.process
            if process is None or not process.is_alive():
                exitcode = process.exitcode if process is not None else None
                self._plan_restart(slot, "crashed", exitcode, now)
                continue
            if (
                slot.ready
                and now - slot.last_beat > self.config.heartbeat_timeout
            ):
                # Alive but silent: the event loop is wedged.  Kill it
                # and treat it like a crash.
                self._terminate(slot, hard=True)
                self._plan_restart(slot, "wedged", None, now)
        self._push_fleet(now)

    def run(
        self,
        duration: "float | None" = None,
        until: "object | None" = None,
    ) -> None:
        """Loop ``step()`` for the CLI (``until`` is an Event-like)."""
        deadline = (
            time.monotonic() + duration if duration is not None else None
        )
        while not self._stopped:
            if deadline is not None and time.monotonic() >= deadline:
                return
            if until is not None and until.is_set():
                return
            if all(s.stale for s in self.slots):
                return  # nothing left to supervise
            self.step()

    def _drain_conn(self, slot: _Slot) -> None:
        conn = slot.conn
        if conn is None:
            return
        try:
            while conn.poll():
                self._handle(slot, conn.recv())
        except (EOFError, OSError):
            pass  # liveness check picks the death up

    def _handle(self, slot: _Slot, message) -> None:
        now = time.monotonic()
        kind = message[0]
        if kind == "ready":
            slot.ready = True
            slot.last_beat = now
            # A fresh worker gets the fleet picture immediately so its
            # /health is doctor-usable without waiting a refresh period.
            _safe_send(slot.conn, ("fleet", self.snapshot()))
            if slot.down_since is not None:
                self.events.append(
                    {
                        "slot": slot.index,
                        "action": "recovered",
                        "recovery_ms": (now - slot.down_since) * 1e3,
                    }
                )
                slot.down_since = None
        elif kind == "beat":
            slot.last_beat = now
            slot.beats = message[1]
        elif kind == "rollover":
            name = message[1]
            self.rollovers.append(name)
            self.events.append(
                {"slot": slot.index, "action": "rollover", "model": name}
            )
            self.broadcast_reload(name, exclude=slot.index)
        elif kind == "stopped":
            slot.ready = False

    def _plan_restart(
        self,
        slot: _Slot,
        reason: str,
        exitcode: "int | None",
        now: float,
    ) -> None:
        if slot.conn is not None:
            slot.conn.close()
            slot.conn = None
        if slot.process is not None:
            slot.process.join(timeout=0.2)
            slot.process = None
        slot.ready = False
        if slot.down_since is None:
            slot.down_since = now
        while (
            slot.restarts
            and now - slot.restarts[0] > self.config.flap_window
        ):
            slot.restarts.popleft()
        if len(slot.restarts) >= self.config.max_restarts:
            slot.stale = True
            slot.pending_restart_at = None
            self.events.append(
                {
                    "slot": slot.index,
                    "action": "stale",
                    "reason": reason,
                    "restarts_in_window": len(slot.restarts),
                }
            )
            self._last_fleet_push = 0.0  # survivors learn right away
            return
        delay = backoff_delay(self.config, len(slot.restarts))
        slot.restarts.append(now)
        slot.restart_count += 1
        slot.pending_restart_at = now + delay
        self.events.append(
            {
                "slot": slot.index,
                "action": "restart",
                "reason": reason,
                "exitcode": exitcode,
                "backoff_s": delay,
            }
        )

    def _push_fleet(self, now: float) -> None:
        if now - self._last_fleet_push < self.config.fleet_refresh:
            return
        self._last_fleet_push = now
        snapshot = self.snapshot()
        for slot in self.slots:
            if slot.conn is not None and slot.ready:
                _safe_send(slot.conn, ("fleet", snapshot))

    # -- fault / rollover fan-out --------------------------------------

    def kill_worker(self, index: int) -> "int | None":
        """SIGKILL one worker (chaos injection); returns the dead pid."""
        slot = self.slots[index]
        process = slot.process
        if process is None or process.pid is None:
            return None
        pid = process.pid
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        return pid

    def broadcast_reload(self, name: str, exclude: "int | None" = None) -> None:
        for slot in self.slots:
            if slot.index == exclude or slot.conn is None or not slot.ready:
                continue
            _safe_send(slot.conn, ("reload", name))

    # -- shutdown ------------------------------------------------------

    def _terminate(self, slot: _Slot, hard: bool = False) -> None:
        process = slot.process
        if process is None or process.pid is None:
            return
        try:
            os.kill(
                process.pid, signal.SIGKILL if hard else signal.SIGTERM
            )
        except ProcessLookupError:
            pass

    def stop(self, drain: bool = True) -> None:
        """Drain (or hard-stop) every worker, escalating to SIGKILL."""
        self._stopped = True
        for slot in self.slots:
            if slot.conn is not None:
                _safe_send(
                    slot.conn, ("drain",) if drain else ("stop",)
                )
        deadline = time.monotonic() + (
            self.config.drain_timeout + 1.0 if drain else 1.0
        )
        for slot in self.slots:
            if slot.process is None:
                continue
            slot.process.join(
                timeout=max(deadline - time.monotonic(), 0.05)
            )
        for slot in self.slots:
            if slot.process is not None and slot.process.is_alive():
                self._terminate(slot)
                slot.process.join(timeout=1.0)
            if slot.process is not None and slot.process.is_alive():
                self._terminate(slot, hard=True)
                slot.process.join(timeout=1.0)
            if slot.conn is not None:
                slot.conn.close()
                slot.conn = None
            slot.process = None
            slot.ready = False
        if self._claim_sock is not None:
            self._claim_sock.close()
            self._claim_sock = None
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None

    # -- reporting -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe fleet state (broadcast to workers, shown by doctor)."""
        now = time.monotonic()
        slots = []
        totals = {"requests": 0, "errors": 0, "quota_rejected": 0}
        for slot in self.slots:
            process = slot.process
            slots.append(
                {
                    "slot": slot.index,
                    "pid": process.pid if process is not None else None,
                    "alive": (
                        process is not None and process.is_alive()
                    ),
                    "ready": slot.ready,
                    "stale": slot.stale,
                    "restarts": slot.restart_count,
                    "beat_age_s": round(max(now - slot.last_beat, 0.0), 3),
                    "counters": dict(slot.beats),
                }
            )
            for key in totals:
                totals[key] += int(slot.beats.get(key, 0))
        return {
            "workers": len(self.slots),
            "port": self.port,
            "reuse_port": self.reuse_port,
            "stale_slots": [s.index for s in self.slots if s.stale],
            "restart_total": sum(s.restart_count for s in self.slots),
            "rollovers": list(self.rollovers[-8:]),
            "totals": totals,
            "slots": slots,
            "events": list(self.events[-16:]),
        }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(
    serve_config: ServeConfig,
    sup_config: SupervisorConfig,
    conn,
) -> None:
    """Entry point of one forked worker process."""
    import asyncio

    # A fresh event loop in the child: the parent never ran one, so
    # there is no inherited loop state to collide with.
    try:
        asyncio.run(_worker_async(serve_config, sup_config, conn))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass


async def _worker_async(
    serve_config: ServeConfig,
    sup_config: SupervisorConfig,
    conn,
) -> None:
    import asyncio

    from repro.serve.server import SpireServer

    server = SpireServer(serve_config)
    server.on_rollover = lambda name: _safe_send(conn, ("rollover", name))
    await server.start()

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    mode = {"drain": True}

    def on_control() -> None:
        try:
            while conn.poll():
                message = conn.recv()
                kind = message[0]
                if kind == "fleet":
                    server.stats.set_fleet(message[1])
                elif kind == "reload":
                    try:
                        server.rollover.adopt(message[1])
                    except Exception:
                        pass
                elif kind == "drain":
                    stop.set()
                elif kind == "stop":
                    mode["drain"] = False
                    stop.set()
        except (EOFError, OSError):
            # The supervisor is gone; drain and exit.
            stop.set()

    loop.add_reader(conn.fileno(), on_control)
    try:
        loop.add_signal_handler(signal.SIGTERM, stop.set)
    except (NotImplementedError, RuntimeError):  # pragma: no cover
        pass

    _safe_send(conn, ("ready", server.port))

    async def beats() -> None:
        while not stop.is_set():
            _safe_send(conn, ("beat", server.stats.beat_payload()))
            try:
                await asyncio.wait_for(
                    stop.wait(), sup_config.heartbeat_interval
                )
            except asyncio.TimeoutError:
                continue

    beat_task = asyncio.ensure_future(beats())
    await stop.wait()
    try:
        loop.remove_reader(conn.fileno())
    except (OSError, ValueError):  # pragma: no cover - conn already dead
        pass
    await server.stop(drain=mode["drain"])
    beat_task.cancel()
    try:
        await beat_task
    except asyncio.CancelledError:
        pass
    _safe_send(conn, ("stopped",))
    conn.close()
