"""Model registry: packed artifacts, mmap zero-copy reloads, LRU residency.

A long-lived server cannot afford the JSON model loader on its hot
reload path: parsing materializes every breakpoint as a Python float and
a :class:`~repro.geometry.piecewise.Breakpoint` before the arrays the
evaluator actually touches are rebuilt from them.  The registry instead
serves models from a packed binary artifact (``<name>.spm``):

- a single JSON *head line* carrying the PR-5-style integrity header
  (``format``/``checksum``/``code_version``) plus per-metric metadata
  and payload offsets, padded so the payload starts 8-byte aligned;
- a flat little-endian float64 payload holding each roofline's
  breakpoint ``x`` then ``y`` arrays back to back.

:func:`map_model` maps the file read-only, hashes the payload bytes
straight out of the mapping (no copy), and builds
:class:`MappedPiecewiseLinear` functions whose evaluation arrays are
NumPy *views* into the mapping — a reload touches no breakpoint objects
and copies no coordinate data.  A checksum or structural mismatch
quarantines the artifact (:func:`~repro.guard.artifact.quarantine_file`)
and raises, so a corrupt model can never be served.

:class:`ModelRegistry` keeps the ``capacity`` most recently used models
resident (per-model LRU) and exposes the counters ``spire doctor``
surfaces through ``serve_state``.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.core.ensemble import SpireModel
from repro.core.roofline import MetricRoofline
from repro.errors import DataError
from repro.geometry.piecewise import Breakpoint, PiecewiseLinear
from repro.guard.artifact import atomic_write_bytes, quarantine_file

__all__ = [
    "MappedPiecewiseLinear",
    "ModelRegistry",
    "PACKED_MODEL_FORMAT",
    "PACKED_MODEL_SUFFIX",
    "map_model",
    "pack_model",
]

PACKED_MODEL_FORMAT = "spire-serve-model/1"
PACKED_MODEL_SUFFIX = ".spm"


class MappedPiecewiseLinear(PiecewiseLinear):
    """A piecewise function whose evaluation arrays view a shared buffer.

    The batch evaluator only ever reads ``_evaluation_arrays()``; this
    subclass seeds that cache directly from zero-copy payload views and
    skips the breakpoint-object construction entirely.  The object
    representation (``_points``/``_xs``) materializes lazily on first
    scalar evaluation or ``breakpoints`` access — the serving hot path
    never gets there except through a roofline's flat infinite tail.
    """

    def __init__(self, bx: np.ndarray, by: np.ndarray):
        # Deliberately no super().__init__: bx/by stay views, and the
        # run-minimum array is the only allocation (same construction as
        # PiecewiseLinear._evaluation_arrays).
        starts = np.empty(len(bx), dtype=bool)
        starts[0] = True
        starts[1:] = bx[1:] != bx[:-1]
        start_indices = np.flatnonzero(starts)
        run_mins = np.minimum.reduceat(by, start_indices)
        counts = np.diff(np.append(start_indices, len(bx)))
        run_min_y = np.repeat(run_mins, counts)
        self._arrays = (bx, by, run_min_y)

    def __getattr__(self, name: str):
        if name in ("_points", "_xs"):
            bx, by, _ = self._arrays
            points = [
                Breakpoint(x, y) for x, y in zip(bx.tolist(), by.tolist())
            ]
            self.__dict__["_points"] = points
            self.__dict__["_xs"] = [p.x for p in points]
            return self.__dict__[name]
        raise AttributeError(name)

    @property
    def tail_y(self) -> float:
        """The flat-tail level without materializing breakpoints."""
        return float(self._arrays[1][-1])


def _payload_checksum(view) -> str:
    return "sha256:" + hashlib.sha256(view).hexdigest()


def pack_model(model: SpireModel, path: "str | Path") -> Path:
    """Serialize ``model`` into the packed ``.spm`` format, atomically."""
    from repro import __version__

    chunks: "list[np.ndarray]" = []
    metrics = []
    offset = 0
    for metric in model.metrics:
        roofline = model.roofline(metric)
        points = roofline.function.breakpoints
        bx = np.asarray([p.x for p in points], dtype="<f8")
        by = np.asarray([p.y for p in points], dtype="<f8")
        chunks.extend((bx, by))
        metrics.append(
            {
                "metric": metric,
                "apex": [roofline.apex.x, roofline.apex.y],
                "sample_count": roofline.sample_count,
                "infinite_sample_count": roofline.infinite_sample_count,
                "direction": roofline.direction,
                "offset": offset,
                "points": len(points),
            }
        )
        offset += 2 * len(points)

    payload = b"".join(chunk.tobytes() for chunk in chunks)
    head = {
        "header": {
            "format": PACKED_MODEL_FORMAT,
            "checksum": _payload_checksum(payload),
            "code_version": __version__,
        },
        "model": {
            "work_unit": model.work_unit,
            "time_unit": model.time_unit,
            "metrics": metrics,
        },
        "payload_float64": offset,
    }
    head_bytes = json.dumps(head, separators=(",", ":")).encode("utf-8")
    # Pad the head line so the payload lands 8-byte aligned: aligned
    # views are a hard requirement for float64 frombuffer on some
    # platforms and free everywhere else.
    padding = -(len(head_bytes) + 1) % 8
    blob = head_bytes + b" " * padding + b"\n" + payload
    return atomic_write_bytes(path, blob)


def _reject(path: Path, reason: str) -> "DataError":
    destination = quarantine_file(path, reason)
    suffix = f" (quarantined to {destination})" if destination else ""
    return DataError(f"{path}: {reason}{suffix}")


def map_model(path: "str | Path") -> "tuple[SpireModel, mmap.mmap]":
    """Map a packed model read-only; verify integrity on the raw bytes.

    Returns ``(model, mapping)`` — the caller owns the mapping and must
    keep it referenced for the model's lifetime (the rooflines' arrays
    view it).  Any verification failure quarantines the artifact and
    raises :class:`~repro.errors.DataError`.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError) as exc:
        raise DataError(f"{path}: cannot map packed model: {exc}") from None

    try:
        newline = mapping.find(b"\n")
        if newline < 0:
            raise _reject(path, "missing packed-model head line")
        try:
            head = json.loads(mapping[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _reject(path, "unparseable packed-model head") from None
        if not isinstance(head, dict):
            raise _reject(path, "packed-model head is not an object")
        header = head.get("header")
        if not isinstance(header, dict):
            raise _reject(path, "missing artifact header")
        found = header.get("format")
        if found != PACKED_MODEL_FORMAT:
            raise _reject(
                path,
                f"schema mismatch: expected {PACKED_MODEL_FORMAT!r}, "
                f"found {found!r}",
            )

        payload_offset = newline + 1
        payload = memoryview(mapping)[payload_offset:]
        if header.get("checksum") != _payload_checksum(payload):
            raise _reject(
                path, "checksum mismatch (truncated or corrupted content)"
            )

        try:
            meta = head["model"]
            count = int(head["payload_float64"])
            work_unit = str(meta["work_unit"])
            time_unit = str(meta["time_unit"])
            entries = meta["metrics"]
        except (KeyError, TypeError, ValueError):
            raise _reject(path, "malformed packed-model metadata") from None
        if count * 8 != len(payload):
            raise _reject(
                path,
                f"payload size mismatch: head declares {count} float64s, "
                f"file holds {len(payload) // 8}",
            )

        rooflines: "dict[str, MetricRoofline]" = {}
        for entry in entries:
            try:
                metric = str(entry["metric"])
                offset = int(entry["offset"])
                points = int(entry["points"])
                apex_x, apex_y = entry["apex"]
            except (KeyError, TypeError, ValueError):
                raise _reject(path, "malformed packed-metric entry") from None
            if points < 1:
                raise _reject(path, f"metric {metric!r} has no breakpoints")
            if offset < 0 or offset + 2 * points > count:
                raise _reject(
                    path, f"metric {metric!r} offsets exceed the payload"
                )
            # Zero-copy views into the mapping: the arrays share the
            # mapped pages, nothing is materialized per breakpoint.
            bx = np.frombuffer(
                mapping, dtype="<f8", count=points,
                offset=payload_offset + 8 * offset,
            )
            by = np.frombuffer(
                mapping, dtype="<f8", count=points,
                offset=payload_offset + 8 * (offset + points),
            )
            if points > 1 and bool((np.diff(bx) < 0).any()):
                raise _reject(
                    path, f"metric {metric!r} breakpoints are not sorted"
                )
            rooflines[metric] = MetricRoofline(
                metric=metric,
                function=MappedPiecewiseLinear(bx, by),
                apex=Breakpoint(float(apex_x), float(apex_y)),
                sample_count=int(entry.get("sample_count", 0)),
                infinite_sample_count=int(
                    entry.get("infinite_sample_count", 0)
                ),
                direction=str(entry.get("direction", "mixed")),
            )
    except DataError:
        _release(mapping)
        raise
    except BaseException:
        _release(mapping)
        raise
    return (
        SpireModel(rooflines, work_unit=work_unit, time_unit=time_unit),
        mapping,
    )


def _release(mapping: mmap.mmap) -> None:
    """Close a mapping, tolerating live exported views.

    NumPy arrays still referencing the buffer make ``close()`` raise
    ``BufferError``; in that case the mapping simply stays alive until
    the arrays are collected — dropping the reference is enough.
    """
    try:
        mapping.close()
    except BufferError:
        pass


class _Resident:
    __slots__ = ("model", "mapping")

    def __init__(self, model: SpireModel, mapping: mmap.mmap):
        self.model = model
        self.mapping = mapping


class ModelRegistry:
    """Per-model LRU over the packed artifact store.

    Cold loads are *single-flight*: when two callers race on the same
    unmapped model, one pays the sha256 verify + mmap and the other
    waits on it (counted as ``single_flight_waits`` and, when a
    :class:`~repro.serve.stats.ServeStats` is attached, as
    ``lock_contention``) instead of duplicating the work.
    """

    def __init__(self, store_dir: "str | Path", capacity: int = 4, stats=None):
        if capacity < 1:
            raise DataError("registry capacity must be at least 1")
        self.store_dir = Path(store_dir)
        self.capacity = capacity
        self.stats = stats
        self._resident: "OrderedDict[str, _Resident]" = OrderedDict()
        self._lock = threading.Lock()
        self._load_locks: "dict[str, threading.Lock]" = {}
        self.hits = 0
        self.misses = 0
        self.loads = 0
        self.evictions = 0
        self.verify_failures = 0
        self.single_flight_waits = 0

    def path_for(self, name: str) -> Path:
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise DataError(f"invalid model name {name!r}")
        return self.store_dir / f"{name}{PACKED_MODEL_SUFFIX}"

    def install(self, name: str, model: SpireModel) -> Path:
        """Pack ``model`` into the store; a resident copy is invalidated."""
        path = pack_model(model, self.path_for(name))
        with self._lock:
            stale = self._resident.pop(name, None)
        if stale is not None:
            _release(stale.mapping)
        return path

    def replace_resident(
        self, name: str, model: SpireModel, mapping: mmap.mmap
    ) -> None:
        """Atomically swap the resident entry for ``name`` (hot rollover).

        The new ``(model, mapping)`` must already be verified — this is
        the registry-alias flip at the end of a rollover.  The old
        mapping's reference is dropped; requests still holding the old
        model object keep its pages alive until they finish, so their
        responses stay bit-identical to pre-rollover serving.
        """
        with self._lock:
            stale = self._resident.pop(name, None)
            self._resident[name] = _Resident(model, mapping)
            evict = self._evict_over_capacity_locked()
        if stale is not None:
            _release(stale.mapping)
        for resident in evict:
            _release(resident.mapping)

    def names(self) -> "list[str]":
        """Models available: resident plus packed on disk, sorted."""
        with self._lock:
            found = set(self._resident)
        if self.store_dir.is_dir():
            for entry in self.store_dir.glob(f"*{PACKED_MODEL_SUFFIX}"):
                found.add(entry.stem)
        return sorted(found)

    def has(self, name: str) -> bool:
        with self._lock:
            if name in self._resident:
                return True
        return self.path_for(name).is_file()

    def _evict_over_capacity_locked(self) -> "list[_Resident]":
        evicted: "list[_Resident]" = []
        while len(self._resident) > self.capacity:
            _, resident = self._resident.popitem(last=False)
            evicted.append(resident)
            self.evictions += 1
        return evicted

    def get(self, name: str) -> SpireModel:
        """The resident model, mapping it in (and evicting) as needed."""
        with self._lock:
            resident = self._resident.get(name)
            if resident is not None:
                self._resident.move_to_end(name)
                self.hits += 1
                return resident.model
            self.misses += 1
            load_lock = self._load_locks.setdefault(name, threading.Lock())
        contended = not load_lock.acquire(blocking=False)
        if contended:
            with self._lock:
                self.single_flight_waits += 1
            if self.stats is not None:
                self.stats.note_lock_contention()
            load_lock.acquire()
        try:
            # The winner may have mapped the model while we waited.
            with self._lock:
                resident = self._resident.get(name)
                if resident is not None:
                    self._resident.move_to_end(name)
                    self.hits += 1
                    return resident.model
            path = self.path_for(name)
            if not path.is_file():
                raise DataError(
                    f"no packed model named {name!r} in {self.store_dir}"
                )
            try:
                model, mapping = map_model(path)
            except DataError:
                with self._lock:
                    self.verify_failures += 1
                raise
            with self._lock:
                self.loads += 1
                self._resident[name] = _Resident(model, mapping)
                evict = self._evict_over_capacity_locked()
            for resident in evict:
                _release(resident.mapping)
            return model
        finally:
            load_lock.release()

    def evict(self, name: str) -> bool:
        with self._lock:
            resident = self._resident.pop(name, None)
            if resident is None:
                return False
            self.evictions += 1
        _release(resident.mapping)
        return True

    def close(self) -> None:
        with self._lock:
            residents = list(self._resident.values())
            self._resident.clear()
        for resident in residents:
            _release(resident.mapping)

    def snapshot(self) -> dict:
        """Counters for ``serve_state`` (see :mod:`repro.serve.stats`)."""
        with self._lock:
            return {
                "occupancy": len(self._resident),
                "capacity": self.capacity,
                "resident": list(self._resident),
                "hits": self.hits,
                "misses": self.misses,
                "loads": self.loads,
                "evictions": self.evictions,
                "verify_failures": self.verify_failures,
                "single_flight_waits": self.single_flight_waits,
            }
