"""Serve-layer chaos harness: acceptance scenarios for the supervised fleet.

``spire faultsim --serve`` drives a real multi-process fleet — a
:class:`~repro.serve.supervisor.ServeSupervisor` with forked workers
sharing one port — through the serve fault kinds of
:mod:`repro.runtime.faults` and checks the robustness invariants the
serving tier promises:

``worker-crash``
    SIGKILL one worker mid-load.  Only requests in flight on the victim
    may fail; every response that does arrive is **bit-identical** to
    the estimate computed locally from the same samples (which is the
    undisturbed run, by the serving layer's determinism contract), and
    the supervisor restarts the slot within its backoff budget.
``worker-hang``
    Wedge one worker's event loop via the ``/debug/hang`` chaos route.
    Its heartbeats stop, the supervisor kills and restarts it, and the
    survivors' responses stay bit-identical throughout.
``rollover-corrupt-artifact``
    Hot-install a corrupted packed artifact under load: the install must
    answer ``422``, the artifact must land in quarantine, and the old
    model must keep serving bit-identically.  A good install afterwards
    must swap with **zero failed requests** — every response matches the
    old or the new model exactly, and the new model reaches every
    worker through the supervisor's reload broadcast.
``quota-storm``
    Hammer one model far past its admission quota: the storm gets
    ``429`` + ``Retry-After`` (never ``5xx``), and a bystander model
    sees zero failures and bit-identical responses.

Every scenario ends with a graceful drain (``stop(drain=True)``) and
reports its measurements in a JSON-ready dict for the CI artifact.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.columns import SampleArray
from repro.core.ensemble import SpireModel, TrainOptions
from repro.errors import SpireError
from repro.runtime.faults import (
    QUOTA_STORM,
    ROLLOVER_CORRUPT_ARTIFACT,
    SERVE_KINDS,
    WORKER_CRASH,
    WORKER_HANG,
    FaultPlan,
)
from repro.serve.quotas import QuotaPolicy
from repro.serve.registry import pack_model
from repro.serve.rollover import STAGING_DIRNAME
from repro.serve.server import ServeConfig
from repro.serve.supervisor import (
    ServeSupervisor,
    SupervisorConfig,
    backoff_delay,
)

__all__ = ["ChaosHarness", "ScenarioResult", "run_serve_chaos"]


# ---------------------------------------------------------------------------
# Deterministic fixtures
# ---------------------------------------------------------------------------


def train_chaos_model(metrics: "list[str]", seed: int) -> SpireModel:
    """A small deterministic model (same generator family as the tests)."""
    rng = random.Random(seed)
    records = []
    for index, metric in enumerate(metrics):
        peak = 2.0 + index
        for _ in range(40):
            x = rng.uniform(0.25, 64.0)
            y = min(x, peak) * rng.uniform(0.3, 1.0)
            t = rng.uniform(1.0, 8.0)
            records.append(
                {
                    "metric": metric,
                    "time": t,
                    "work": y * t,
                    "metric_count": (y * t) / x,
                }
            )
    array = SampleArray.from_records(records, validate=True)
    return SpireModel.train(
        array.to_sample_set(), TrainOptions(min_samples_per_metric=1)
    )


def _request_rows(metrics: "list[str]", rng: random.Random) -> list:
    rows = []
    for _ in range(rng.randint(1, 5)):
        rows.append(
            (
                rng.choice(metrics),
                rng.uniform(0.5, 4.0),
                rng.uniform(0.5, 8.0),
                rng.uniform(0.1, 4.0),
            )
        )
    return rows


def _columns_body(model: str, rows: list) -> bytes:
    return json.dumps(
        {
            "model": model,
            "columns": {
                "metrics": [r[0] for r in rows],
                "time": [r[1] for r in rows],
                "work": [r[2] for r in rows],
                "metric_count": [r[3] for r in rows],
            },
        }
    ).encode("utf-8")


def _expected_per_metric(model: SpireModel, rows: list) -> "dict | None":
    """The bit-identity oracle: the estimate this request gets locally."""
    array = SampleArray.from_lists(
        [r[0] for r in rows],
        [r[1] for r in rows],
        [r[2] for r in rows],
        [r[3] for r in rows],
    )
    try:
        estimate = model.estimate(array.to_sample_set())
    except SpireError:
        return None
    # One JSON round trip, matching what the HTTP response undergoes;
    # Python's float repr is shortest-round-trip so values stay exact.
    return json.loads(json.dumps(estimate.per_metric))


# ---------------------------------------------------------------------------
# Raw-socket HTTP client (per-request connections for clean attribution)
# ---------------------------------------------------------------------------


def _http(
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    content_type: str = "application/json",
    timeout: float = 10.0,
) -> "tuple[int, dict, dict]":
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: chaos\r\nConnection: close\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        sock.sendall(head.encode("latin-1") + body)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    finally:
        sock.close()
    raw_head, _, payload = data.partition(b"\r\n\r\n")
    if not raw_head:
        raise ConnectionError("empty response")
    status = int(raw_head.split(b" ", 2)[1])
    headers = {}
    for line in raw_head.split(b"\r\n")[1:]:
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(payload) if payload else {}


@dataclass
class _Outcome:
    index: int
    status: "int | None" = None   # None = transport failure
    worker: "str | None" = None
    per_metric: "dict | None" = None
    retry_after: "str | None" = None
    error: str = ""


def _drive_load(
    port: int,
    requests: "list[tuple[str, bytes]]",
    threads: int = 4,
    mid_load: "object | None" = None,
    mid_at: "int | None" = None,
) -> "list[_Outcome]":
    """Send every request (round-robin over ``threads`` workers).

    ``mid_load`` is a callable fired once, by whichever worker thread
    reaches request index ``mid_at`` first — the chaos injection point.
    """
    outcomes = [_Outcome(index=i) for i in range(len(requests))]
    cursor = {"next": 0}
    lock = threading.Lock()
    fired = threading.Event()

    def worker() -> None:
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(requests):
                    return
                cursor["next"] = index + 1
            if (
                mid_load is not None
                and mid_at is not None
                and index >= mid_at
                and not fired.is_set()
            ):
                fired.set()
                mid_load()
            path, body = requests[index]
            out = outcomes[index]
            try:
                status, headers, payload = _http(
                    port, "POST", path, body
                )
            except (OSError, ValueError, ConnectionError) as exc:
                out.error = type(exc).__name__
                continue
            out.status = status
            out.worker = headers.get("x-spire-worker")
            out.retry_after = headers.get("retry-after")
            if isinstance(payload, dict):
                out.per_metric = payload.get("per_metric")
                if status >= 400:
                    out.error = str(payload.get("error", ""))[:120]

    pool = [
        threading.Thread(target=worker, daemon=True) for _ in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return outcomes


# ---------------------------------------------------------------------------
# Scenario results
# ---------------------------------------------------------------------------


@dataclass
class ScenarioResult:
    name: str
    ok: bool = True
    failures: "list[str]" = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def fail(self, reason: str) -> None:
        self.ok = False
        self.failures.append(reason)

    def check(self, condition: bool, reason: str) -> None:
        if not condition:
            self.fail(reason)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "failures": self.failures,
            "metrics": self.metrics,
        }


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------


class ChaosHarness:
    """Owns the model store and runs one fleet per scenario."""

    def __init__(
        self,
        store_dir: "str | Path",
        workers: int = 4,
        requests: int = 48,
        seed: int = 0,
        metrics: "list[str] | None" = None,
    ):
        self.store_dir = Path(store_dir)
        self.workers = workers
        self.requests = requests
        self.seed = seed
        self.metrics = metrics or [f"m.{i}" for i in range(4)]
        self.models = {
            "alpha": train_chaos_model(self.metrics, seed=seed + 7),
            "beta": train_chaos_model(self.metrics, seed=seed + 11),
        }
        # The rollover replacement for alpha: same metrics, new fits.
        self.alpha_v2 = train_chaos_model(self.metrics, seed=seed + 23)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        for name, model in self.models.items():
            pack_model(model, self.store_dir / f"{name}.spm")

    # -- fleet plumbing ------------------------------------------------

    def _supervisor(
        self, quotas: "dict[str, QuotaPolicy] | None" = None
    ) -> "tuple[ServeSupervisor, threading.Event, threading.Thread]":
        serve = ServeConfig(
            port=0,
            store_dir=str(self.store_dir),
            debug_faults=True,
            quotas=quotas,
            drain_timeout=10.0,
        )
        config = SupervisorConfig(
            workers=self.workers,
            heartbeat_interval=0.15,
            heartbeat_timeout=2.5,
            backoff_base=0.05,
            backoff_cap=1.0,
            max_restarts=5,
            flap_window=30.0,
            drain_timeout=10.0,
        )
        supervisor = ServeSupervisor(serve, config)
        supervisor.start()
        supervisor.wait_ready()
        stop = threading.Event()
        monitor = threading.Thread(
            target=supervisor.run, kwargs={"until": stop}, daemon=True
        )
        monitor.start()
        return supervisor, stop, monitor

    def _teardown(
        self,
        supervisor: ServeSupervisor,
        stop: threading.Event,
        monitor: threading.Thread,
        result: ScenarioResult,
    ) -> None:
        stop.set()
        monitor.join(timeout=10.0)
        started = time.perf_counter()
        supervisor.stop(drain=True)
        result.metrics["drain_ms"] = round(
            (time.perf_counter() - started) * 1e3, 1
        )

    def _request_set(
        self, model: str, count: "int | None" = None, salt: int = 0
    ) -> "tuple[list[tuple[str, bytes]], list[dict | None]]":
        rng = random.Random(self.seed * 1000 + salt)
        requests, expected = [], []
        for _ in range(count if count is not None else self.requests):
            rows = _request_rows(self.metrics, rng)
            requests.append(("/v1/estimate", _columns_body(model, rows)))
            expected.append(
                _expected_per_metric(self.models[model], rows)
                if model in self.models
                else None
            )
        return requests, expected

    def _check_identical(
        self,
        result: ScenarioResult,
        outcomes: "list[_Outcome]",
        expected: "list[dict | None]",
        allow_failures: bool,
    ) -> int:
        """Every 200 must match its local oracle bit-for-bit."""
        failures = 0
        for out, want in zip(outcomes, expected):
            if out.status == 200:
                result.check(
                    out.per_metric == want,
                    f"request {out.index} diverged from the local "
                    f"estimate: {out.per_metric} != {want}",
                )
            else:
                failures += 1
                if not allow_failures:
                    result.fail(
                        f"request {out.index} failed: status "
                        f"{out.status} {out.error}"
                    )
        return failures

    # -- scenarios -----------------------------------------------------

    def worker_crash(self, slot: int) -> ScenarioResult:
        result = ScenarioResult(name=f"worker-crash[slot={slot}]")
        supervisor, stop, monitor = self._supervisor()
        try:
            requests, expected = self._request_set("alpha", salt=1)
            kill_at = len(requests) // 3
            outcomes = _drive_load(
                supervisor.port,
                requests,
                mid_load=lambda: supervisor.kill_worker(slot),
                mid_at=kill_at,
            )
            failures = self._check_identical(
                result, outcomes, expected, allow_failures=True
            )
            result.metrics["requests"] = len(requests)
            result.metrics["failed_requests"] = failures
            # Only the victim's in-flight work may fail: with one
            # connection per request, that is bounded by the driver's
            # concurrency, not the request count.
            result.check(
                failures <= 4,
                f"{failures} request(s) failed; only the victim's "
                "in-flight requests may",
            )
            recovery = self._await_recovery(supervisor, result)
            if recovery is not None:
                budget_ms = (
                    backoff_delay(supervisor.config, 0)
                    + supervisor.config.start_timeout
                ) * 1e3
                result.metrics["recovery_ms"] = round(recovery, 1)
                result.check(
                    recovery <= budget_ms,
                    f"recovery took {recovery:.0f}ms, budget "
                    f"{budget_ms:.0f}ms",
                )
            snap = supervisor.snapshot()
            result.check(
                snap["restart_total"] >= 1, "no restart was recorded"
            )
            result.check(
                not snap["stale_slots"],
                f"slots went stale: {snap['stale_slots']}",
            )
            # The fleet still answers, bit-identically.
            after, after_want = self._request_set("alpha", count=8, salt=2)
            post = _drive_load(supervisor.port, after)
            self._check_identical(result, post, after_want, False)
        finally:
            self._teardown(supervisor, stop, monitor, result)
        return result

    def worker_hang(self, slot: int, hang_seconds: float) -> ScenarioResult:
        result = ScenarioResult(name=f"worker-hang[slot={slot}]")
        supervisor, stop, monitor = self._supervisor()
        try:
            def wedge() -> None:
                # Fired from a load thread; the request itself will die
                # with the worker, so ignore transport errors.
                try:
                    _http(
                        supervisor.port,
                        "POST",
                        f"/debug/hang?seconds={hang_seconds:g}",
                        timeout=1.0,
                    )
                except (OSError, ValueError, ConnectionError):
                    pass

            requests, expected = self._request_set("alpha", salt=3)
            outcomes = _drive_load(
                supervisor.port,
                requests,
                mid_load=wedge,
                mid_at=len(requests) // 3,
            )
            failures = self._check_identical(
                result, outcomes, expected, allow_failures=True
            )
            result.metrics["failed_requests"] = failures
            recovery = self._await_recovery(
                supervisor, result, extra=supervisor.config.heartbeat_timeout
            )
            if recovery is not None:
                result.metrics["recovery_ms"] = round(recovery, 1)
            events = supervisor.snapshot()["events"]
            result.check(
                any(
                    e.get("action") == "restart"
                    and e.get("reason") == "wedged"
                    for e in events
                ),
                f"no wedged-restart event in {events}",
            )
            after, after_want = self._request_set("alpha", count=8, salt=4)
            post = _drive_load(supervisor.port, after)
            self._check_identical(result, post, after_want, False)
        finally:
            self._teardown(supervisor, stop, monitor, result)
        return result

    def rollover(self, model: str) -> ScenarioResult:
        result = ScenarioResult(name=f"rollover[{model}]")
        supervisor, stop, monitor = self._supervisor()
        try:
            good_blob = pack_model(
                self.alpha_v2, self.store_dir / ".chaos-v2.spm"
            ).read_bytes()
            (self.store_dir / ".chaos-v2.spm").unlink()
            corrupt = good_blob[:-24] + b"\x00" * 24

            def install(blob: bytes) -> "tuple[int, dict]":
                status, _, payload = _http(
                    supervisor.port,
                    "POST",
                    f"/v1/models/install?model={model}",
                    blob,
                    content_type="application/octet-stream",
                )
                return status, payload

            # Phase 1: corrupted artifact under load — 422, quarantined,
            # old model keeps serving bit-identically with no failures.
            requests, expected = self._request_set(model, salt=5)
            install_state: dict = {}
            outcomes = _drive_load(
                supervisor.port,
                requests,
                mid_load=lambda: install_state.update(
                    zip(("status", "payload"), install(corrupt))
                ),
                mid_at=len(requests) // 3,
            )
            self._check_identical(result, outcomes, expected, False)
            result.check(
                install_state.get("status") == 422,
                f"corrupt install answered {install_state.get('status')}, "
                "expected 422",
            )
            quarantine = (
                self.store_dir / STAGING_DIRNAME / ".quarantine"
            )
            result.check(
                quarantine.is_dir() and any(quarantine.iterdir()),
                "corrupt artifact was not quarantined",
            )

            # Phase 2: good artifact under load — zero failures, every
            # response matches old or new model exactly, and the new
            # model propagates to every worker.
            old_want = expected
            rng = random.Random(self.seed * 1000 + 6)
            rows_set = [
                _request_rows(self.metrics, rng)
                for _ in range(self.requests)
            ]
            requests2 = [
                ("/v1/estimate", _columns_body(model, rows))
                for rows in rows_set
            ]
            want_old = [
                _expected_per_metric(self.models[model], rows)
                for rows in rows_set
            ]
            want_new = [
                _expected_per_metric(self.alpha_v2, rows)
                for rows in rows_set
            ]
            started = time.perf_counter()
            outcomes2 = _drive_load(
                supervisor.port,
                requests2,
                mid_load=lambda: install_state.update(
                    {"good": install(good_blob)}
                ),
                mid_at=len(requests2) // 3,
            )
            good_status = install_state.get("good", (None, {}))[0]
            result.check(
                good_status == 200,
                f"good install answered {good_status}, expected 200",
            )
            for out, old, new in zip(outcomes2, want_old, want_new):
                result.check(
                    out.status == 200,
                    f"request {out.index} failed mid-rollover: "
                    f"{out.status} {out.error}",
                )
                if out.status == 200:
                    result.check(
                        out.per_metric in (old, new),
                        f"request {out.index} matches neither model "
                        "version bit-identically",
                    )

            # Propagation: poll until every worker slot serves v2.
            deadline = time.monotonic() + 10.0
            serving_new: "set[str]" = set()
            probe_rows = rows_set[0]
            probe = _columns_body(model, probe_rows)
            probe_new = _expected_per_metric(self.alpha_v2, probe_rows)
            while time.monotonic() < deadline:
                status, headers, payload = _http(
                    supervisor.port, "POST", "/v1/estimate", probe
                )
                if (
                    status == 200
                    and payload.get("per_metric") == probe_new
                ):
                    worker = headers.get("x-spire-worker")
                    if worker is not None:
                        serving_new.add(worker)
                if len(serving_new) >= self.workers:
                    break
                time.sleep(0.02)
            result.metrics["rollover_propagation_ms"] = round(
                (time.perf_counter() - started) * 1e3, 1
            )
            result.check(
                len(serving_new) >= self.workers,
                f"only worker(s) {sorted(serving_new)} of "
                f"{self.workers} adopted the rollover",
            )
            result.metrics["old_responses"] = sum(
                1
                for out, old in zip(outcomes2, want_old)
                if out.per_metric == old
            )
            result.metrics["new_responses"] = sum(
                1
                for out, new in zip(outcomes2, want_new)
                if out.per_metric == new
            )
        finally:
            self._teardown(supervisor, stop, monitor, result)
            # Restore the original artifact for later scenarios.
            pack_model(
                self.models[model], self.store_dir / f"{model}.spm"
            )
        return result

    def quota_storm(self, model: str, factor: float) -> ScenarioResult:
        result = ScenarioResult(name=f"quota-storm[{model}]")
        bystander = "beta" if model != "beta" else "alpha"
        # Buckets are per worker process, so the fleet-effective rate is
        # workers * rate; keep it far below the storm's request rate.
        quotas = {model: QuotaPolicy(rate=10.0, burst=2.0)}
        supervisor, stop, monitor = self._supervisor(quotas=quotas)
        try:
            storm_count = int(self.requests * max(factor, 2.0) / 2)
            storm, _ = self._request_set(model, count=storm_count, salt=8)
            calm, calm_want = self._request_set(bystander, salt=9)

            calm_out: "list[_Outcome]" = []

            def run_calm() -> None:
                calm_out.extend(
                    _drive_load(supervisor.port, calm, threads=2)
                )

            calm_thread = threading.Thread(target=run_calm, daemon=True)
            calm_thread.start()
            storm_out = _drive_load(supervisor.port, storm, threads=4)
            calm_thread.join(timeout=60.0)

            rejected = [o for o in storm_out if o.status == 429]
            server_errors = [
                o
                for o in storm_out
                if o.status is not None and o.status >= 500
            ]
            result.metrics["storm_requests"] = len(storm)
            result.metrics["storm_429"] = len(rejected)
            result.check(
                len(rejected) > 0,
                "the storm was never quota-limited (no 429s)",
            )
            result.check(
                not server_errors,
                f"storm triggered {len(server_errors)} 5xx responses",
            )
            result.check(
                all(o.retry_after for o in rejected),
                "429 responses are missing Retry-After",
            )
            # The bystander model must be completely undisturbed.
            result.check(
                len(calm_out) == len(calm),
                f"bystander load incomplete: {len(calm_out)}/{len(calm)}",
            )
            self._check_identical(result, calm_out, calm_want, False)
            result.metrics["bystander_requests"] = len(calm)
        finally:
            self._teardown(supervisor, stop, monitor, result)
        return result

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _await_recovery(
        supervisor: ServeSupervisor,
        result: ScenarioResult,
        extra: float = 0.0,
    ) -> "float | None":
        """Wait for a 'recovered' event; the monitor thread produces it."""
        deadline = (
            time.monotonic()
            + supervisor.config.start_timeout
            + supervisor.config.backoff_cap
            + extra
        )
        while time.monotonic() < deadline:
            for event in supervisor.snapshot()["events"]:
                if event.get("action") == "recovered":
                    return float(event["recovery_ms"])
            time.sleep(0.05)
        result.fail("worker never recovered (no 'recovered' event)")
        return None

    # -- plan dispatch -------------------------------------------------

    def run_plan(self, plan: FaultPlan) -> dict:
        """Run one scenario per serve fault spec; return the JSON report."""
        results: "list[ScenarioResult]" = []
        for spec in plan.serve_faults():
            if spec.kind == WORKER_CRASH:
                slot = self._slot_of(spec.workload)
                results.append(self.worker_crash(slot))
            elif spec.kind == WORKER_HANG:
                slot = self._slot_of(spec.workload)
                results.append(
                    self.worker_hang(slot, min(spec.hang_seconds, 60.0))
                )
            elif spec.kind == ROLLOVER_CORRUPT_ARTIFACT:
                model = (
                    spec.workload if spec.workload in self.models else "alpha"
                )
                results.append(self.rollover(model))
            elif spec.kind == QUOTA_STORM:
                model = (
                    spec.workload if spec.workload in self.models else "alpha"
                )
                results.append(self.quota_storm(model, spec.factor))
        return {
            "ok": all(r.ok for r in results),
            "workers": self.workers,
            "requests_per_scenario": self.requests,
            "seed": self.seed,
            "kinds_supported": list(SERVE_KINDS),
            "scenarios": [r.to_dict() for r in results],
        }

    def _slot_of(self, workload: str) -> int:
        try:
            slot = int(workload)
        except ValueError:
            return 0
        return slot % self.workers


def run_serve_chaos(
    store_dir: "str | Path",
    plan: FaultPlan,
    workers: int = 4,
    requests: int = 48,
    seed: int = 0,
) -> dict:
    """Convenience wrapper used by ``spire faultsim --serve``."""
    harness = ChaosHarness(
        store_dir, workers=workers, requests=requests, seed=seed
    )
    return harness.run_plan(plan)
