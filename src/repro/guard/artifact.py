"""Artifact integrity: headers, verification, atomic writes, quarantine.

Every JSON artifact SPIRE persists — experiment-cache entries, per-workload
checkpoints, saved models and sample sets — carries a shared ``header``
block::

    {"format": "<schema>/<rev>", "checksum": "sha256:<...>",
     "code_version": "<package version>"}

The checksum covers the canonical JSON encoding of the payload *without*
the header, so truncation, bit rot and hand-editing are all detectable.
Loaders verify the schema string and checksum; a mismatched or headerless
managed artifact is **quarantined** — moved into a ``.quarantine/``
subdirectory next to the file, never deleted — and recorded in the guard
health ledger so it surfaces in :class:`~repro.guard.health.HealthReport`
and can be inspected or pruned by ``spire doctor``.

Writes here (and in :mod:`repro.io.dataset`) are atomic: content lands in
a temp file in the destination directory and is moved into place with
``os.replace``, so a crash mid-write never leaves a half-written artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.guard.dispatch import registry

__all__ = [
    "HEADER_KEY",
    "QUARANTINE_DIRNAME",
    "attach_header",
    "atomic_write_bytes",
    "atomic_write_text",
    "content_checksum",
    "quarantine_dir",
    "quarantine_file",
    "verify_payload",
]

HEADER_KEY = "header"
QUARANTINE_DIRNAME = ".quarantine"


def content_checksum(payload: dict) -> str:
    """SHA-256 over the canonical JSON body (header excluded)."""
    body = {k: v for k, v in payload.items() if k != HEADER_KEY}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def attach_header(payload: dict, schema: str) -> dict:
    """Return ``payload`` with an integrity header attached."""
    from repro import __version__

    stamped = {k: v for k, v in payload.items() if k != HEADER_KEY}
    stamped[HEADER_KEY] = {
        "format": schema,
        "checksum": content_checksum(stamped),
        "code_version": __version__,
    }
    return stamped


def verify_payload(
    payload, schema: str, require_header: bool = True
) -> str | None:
    """Why ``payload`` fails integrity verification, or ``None`` if clean.

    Checks (in order): the payload is a JSON object, the header exists
    (skipped for legacy files when ``require_header`` is false), the
    header's schema string matches ``schema`` (version skew), and the
    content checksum matches (truncation/corruption).  The header's
    ``code_version`` is informational only — format revisions, not package
    versions, govern compatibility.
    """
    if not isinstance(payload, dict):
        return "not a JSON object"
    header = payload.get(HEADER_KEY)
    if header is None:
        if require_header:
            return "missing artifact header"
        return None
    if not isinstance(header, dict):
        return "malformed artifact header"
    found = header.get("format")
    if found != schema:
        return f"schema mismatch: expected {schema!r}, found {found!r}"
    expected = header.get("checksum")
    actual = content_checksum(payload)
    if expected != actual:
        return "checksum mismatch (truncated or corrupted content)"
    return None


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.stem}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Binary twin of :func:`atomic_write_text` (temp file + ``os.replace``).

    Used for the packed model artifacts the serving registry maps
    read-only: a crash mid-pack must never leave a half-written ``.spm``
    where a server could map it.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.stem}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def quarantine_dir(directory: str | Path) -> Path:
    """The quarantine subdirectory for artifacts under ``directory``."""
    return Path(directory) / QUARANTINE_DIRNAME


def quarantine_file(path: str | Path, reason: str = "") -> Path | None:
    """Move a failed artifact into quarantine instead of deleting it.

    Returns the quarantine destination, or ``None`` when the file was
    already gone (a concurrent process quarantined or replaced it).  Name
    collisions get a numeric suffix so repeated corruption of the same
    entry never overwrites earlier evidence.
    """
    path = Path(path)
    target_dir = quarantine_dir(path.parent)
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
        destination = target_dir / path.name
        counter = 1
        while destination.exists():
            destination = target_dir / f"{path.stem}.{counter}{path.suffix}"
            counter += 1
        os.replace(path, destination)
    except OSError:
        return None
    registry().record_quarantine(
        f"{destination}" + (f" ({reason})" if reason else "")
    )
    return destination
