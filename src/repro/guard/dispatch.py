"""Per-kernel guarded dispatch with sampled oracle checks.

PRs 3–4 left every vectorized kernel with its scalar reference
implementation intact, but the only dispatch control was the global
``SPIRE_SCALAR_FALLBACK`` switch — all-or-nothing, and never *checked* at
runtime.  This module makes the oracle discipline the benches apply
offline into a runtime layer:

- every vectorized kernel dispatches through a named :class:`KernelGuard`
  from a process-wide registry;
- a deterministic sample of calls (every ``check_rate``-th, with a
  seed-driven per-kernel offset) replays the same inputs through the
  retained scalar oracle under :func:`repro.fastpath.force_scalar` and
  compares the results to tolerance;
- on divergence the guard records a
  :class:`~repro.guard.health.DivergenceEvent` and trips that kernel's
  breaker: the kernel runs its scalar path for the rest of the process
  while every other kernel stays fast.  (``SPIRE_GUARD_POLICY=raise``
  raises :class:`~repro.errors.GuardDivergenceError` instead.)

Configuration is environment-driven so worker processes inherit it:
``SPIRE_GUARD_RATE`` (default 256; ``1`` checks every call, ``0`` never
checks), ``SPIRE_GUARD_RATE_<KERNEL>`` per-kernel overrides (kernel name
upper-cased, dots to underscores), ``SPIRE_GUARD_SEED``,
``SPIRE_GUARD_POLICY`` and ``SPIRE_GUARDRAIL_POLICY``.
``SPIRE_GUARD_INJECT`` (comma-separated kernel names) forces a divergence
on each named kernel's next checked call — the hook behind the
``diverge-kernel`` fault (:mod:`repro.runtime.faults`).
"""

from __future__ import annotations

import hashlib
import math
import os
import threading
import warnings
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import ConfigError, DegradedDataWarning, GuardDivergenceError
from repro.fastpath import force_scalar, scalar_fallback_enabled
from repro.guard.health import (
    DivergenceEvent,
    DriftEvent,
    GuardrailHit,
    HealthReport,
    KernelHealth,
)

__all__ = [
    "DEFAULT_CHECK_RATE",
    "DEFAULT_RATE_OVERRIDES",
    "GUARDED_KERNELS",
    "GuardConfig",
    "KernelGuard",
    "approx_equal",
    "guarded_call",
    "health_report",
    "inject_divergence",
    "kernel_guard",
    "registry",
    "reset_guards",
]

#: Every kernel registered with a guarded dispatch point.
GUARDED_KERNELS = (
    "sanitize",
    "pareto",
    "direction",
    "train",
    "estimate",
    "predictor.update_batch",
    "cache.access_batch",
    "pipeline.execute_array",
    "simulate_run",
    "fused_experiment",
    "trace.fused_run",
    "trace.block_recurrence",
    "shm.transport",
    "stream.update",
    "serve.batch_estimate",
)

DEFAULT_CHECK_RATE = 256

#: Default per-kernel rate overrides.  The simulation-substrate kernels
#: replay a whole micro-op batch through the scalar path (plus a state
#: snapshot) per check — a far costlier oracle, relative to one fast
#: call, than the model-side kernels' — so they sample sparser to keep
#: guarded overhead inside the <=5% bench budget.  Explicit
#: ``SPIRE_GUARD_RATE`` / ``SPIRE_GUARD_RATE_<KERNEL>`` settings win.
DEFAULT_RATE_OVERRIDES = {
    "predictor.update_batch": 2048,
    "cache.access_batch": 2048,
    "pipeline.execute_array": 2048,
    "simulate_run": 2048,
    # One fused-experiment call covers a whole experiment, so its oracle
    # (replaying one deterministically chosen segment through the
    # per-workload path) costs about one task per checked experiment —
    # rate 8 keeps the amortized overhead well inside the 5% budget.
    "fused_experiment": 8,
    "trace.fused_run": 64,
    # One block_recurrence check re-runs a whole 16k-uop block through
    # the scalar loop (on a deep-copied pipeline), so the oracle costs
    # roughly one fast block; rate 512 keeps that amortized well under
    # the overhead budget while still checking every full-scale run.
    "trace.block_recurrence": 512,
    "shm.transport": 64,
    # One stream.update call refits one metric from its maintained
    # structures; its oracle is a full batch rebuild of that metric, so
    # rate 64 bounds the amortized oracle cost per refit while still
    # checking every long-lived stream many times over.
    "stream.update": 64,
    # One serve.batch_estimate call evaluates a whole fused micro-batch;
    # its oracle replays every request in the batch through the scalar
    # per-request path, so a check costs roughly max_batch fast calls.
    # Rate 64 keeps the amortized overhead per served request small
    # while still checking a busy server many times a minute.
    "serve.batch_estimate": 64,
}

RATE_ENV = "SPIRE_GUARD_RATE"
SEED_ENV = "SPIRE_GUARD_SEED"
POLICY_ENV = "SPIRE_GUARD_POLICY"
GUARDRAIL_POLICY_ENV = "SPIRE_GUARDRAIL_POLICY"
INJECT_ENV = "SPIRE_GUARD_INJECT"

GUARD_POLICIES = ("degrade", "raise")
GUARDRAIL_POLICIES = ("record", "raise", "off")


def _env_rate_name(kernel: str) -> str:
    return f"{RATE_ENV}_{kernel.upper().replace('.', '_').replace('-', '_')}"


@dataclass(frozen=True)
class GuardConfig:
    """Sampling and policy knobs for the guard registry."""

    check_rate: int = DEFAULT_CHECK_RATE
    seed: int = 0
    policy: str = "degrade"
    guardrail_policy: str = "record"
    rate_overrides: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.check_rate < 0:
            raise ConfigError("guard check_rate cannot be negative")
        if self.policy not in GUARD_POLICIES:
            raise ConfigError(
                f"unknown guard policy {self.policy!r}; "
                f"expected one of {GUARD_POLICIES}"
            )
        if self.guardrail_policy not in GUARDRAIL_POLICIES:
            raise ConfigError(
                f"unknown guardrail policy {self.guardrail_policy!r}; "
                f"expected one of {GUARDRAIL_POLICIES}"
            )
        for kernel, rate in self.rate_overrides.items():
            if rate < 0:
                raise ConfigError(
                    f"guard rate override for {kernel!r} cannot be negative"
                )

    @classmethod
    def from_env(cls) -> "GuardConfig":
        def _int(name: str, default: int) -> int:
            raw = os.environ.get(name, "").strip()
            if not raw:
                return default
            try:
                return int(raw)
            except ValueError:
                return default

        # A globally-set rate is an explicit request: it applies to every
        # kernel.  Otherwise the substrate kernels keep their sparser
        # defaults, and per-kernel env settings win either way.
        overrides = (
            {} if os.environ.get(RATE_ENV, "").strip()
            else dict(DEFAULT_RATE_OVERRIDES)
        )
        for kernel in GUARDED_KERNELS:
            raw = os.environ.get(_env_rate_name(kernel), "").strip()
            if raw:
                try:
                    overrides[kernel] = int(raw)
                except ValueError:
                    pass
        policy = os.environ.get(POLICY_ENV, "").strip().lower() or "degrade"
        guardrail = (
            os.environ.get(GUARDRAIL_POLICY_ENV, "").strip().lower() or "record"
        )
        return cls(
            check_rate=_int(RATE_ENV, DEFAULT_CHECK_RATE),
            seed=_int(SEED_ENV, 0),
            policy=policy if policy in GUARD_POLICIES else "degrade",
            guardrail_policy=(
                guardrail if guardrail in GUARDRAIL_POLICIES else "record"
            ),
            rate_overrides=overrides,
        )

    def rate_for(self, kernel: str) -> int:
        return self.rate_overrides.get(kernel, self.check_rate)


def _check_offset(seed: int, kernel: str, rate: int) -> int:
    """Deterministic per-kernel phase for the every-Nth-call schedule."""
    if rate <= 1:
        return 0
    digest = hashlib.sha256(f"{seed}:{kernel}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % rate


class KernelGuard:
    """Circuit breaker plus check schedule for one vectorized kernel."""

    __slots__ = ("name", "rate", "calls", "checks", "tripped", "_offset", "_registry")

    def __init__(self, name: str, rate: int, seed: int, registry: "GuardRegistry"):
        self.name = name
        self.rate = rate
        self.calls = 0
        self.checks = 0
        self.tripped = False
        self._offset = _check_offset(seed, name, rate)
        self._registry = registry

    def use_fast(self) -> bool:
        """Whether this dispatch should take the vectorized path."""
        return not self.tripped and not scalar_fallback_enabled()

    def should_check(self) -> bool:
        """Count one fast-path call; True when it is scheduled for a check.

        Deterministic: call index ``i`` is checked iff ``i % rate`` equals
        the kernel's seed-derived offset (rate 1 checks every call, rate 0
        never checks).  A pending injected divergence forces a check.
        """
        index = self.calls
        self.calls += 1
        if self._registry.injection_pending(self.name):
            return True
        if self.rate <= 0:
            return False
        return index % self.rate == self._offset

    def resolve(self, ok: bool, detail: str = "") -> bool:
        """Settle one sampled check; True means serve the fast result.

        A real divergence (``ok`` false) records the event, trips the
        breaker (or raises under the ``raise`` policy) and returns False —
        the caller should serve the oracle's result, which is the trusted
        one.  An injected divergence behaves identically for telemetry and
        tripping but returns True: the fast result was actually correct,
        so survivors stay bit-identical to a fault-free run.
        """
        self.checks += 1
        injected = self._registry.consume_injection(self.name)
        if ok and not injected:
            return True
        event = DivergenceEvent(
            kernel=self.name,
            call_index=self.calls - 1,
            detail=detail,
            injected=injected,
        )
        self._registry.record_divergence(self, event)
        return injected


class GuardRegistry:
    """Process-wide state: one guard per kernel plus the health ledger."""

    def __init__(self, config: GuardConfig | None = None):
        self.config = config or GuardConfig.from_env()
        self._guards: dict[str, KernelGuard] = {}
        self._injections: dict[str, int] = {}
        self._divergences: list[DivergenceEvent] = []
        self._guardrail_hits: list[GuardrailHit] = []
        self._quarantined: list[str] = []
        self._drift_events: list[DriftEvent] = []
        self._lock = threading.Lock()
        raw = os.environ.get(INJECT_ENV, "")
        for name in raw.split(","):
            name = name.strip()
            if name:
                self._injections[name] = self._injections.get(name, 0) + 1

    def guard(self, name: str) -> KernelGuard:
        guard = self._guards.get(name)
        if guard is None:
            with self._lock:
                guard = self._guards.get(name)
                if guard is None:
                    guard = KernelGuard(
                        name,
                        rate=self.config.rate_for(name),
                        seed=self.config.seed,
                        registry=self,
                    )
                    self._guards[name] = guard
        return guard

    # -- injected divergence (the diverge-kernel fault) -----------------

    def inject_divergence(self, name: str, times: int = 1) -> None:
        with self._lock:
            self._injections[name] = self._injections.get(name, 0) + times

    def injection_pending(self, name: str) -> bool:
        return self._injections.get(name, 0) > 0

    def consume_injection(self, name: str) -> bool:
        with self._lock:
            remaining = self._injections.get(name, 0)
            if remaining <= 0:
                return False
            if remaining == 1:
                del self._injections[name]
            else:
                self._injections[name] = remaining - 1
            return True

    # -- ledger ----------------------------------------------------------

    def record_divergence(self, guard: KernelGuard, event: DivergenceEvent) -> None:
        with self._lock:
            self._divergences.append(event)
            guard.tripped = True
        if self.config.policy == "raise":
            raise GuardDivergenceError(
                f"kernel {event.kernel!r} diverged from its scalar oracle at "
                f"call {event.call_index}"
                + (f": {event.detail}" if event.detail else "")
            )
        warnings.warn(
            f"guarded kernel {event.kernel!r} "
            + ("received an injected divergence" if event.injected
               else "diverged from its scalar oracle")
            + f" at call {event.call_index}; tripped to the scalar path for "
            f"the rest of the process",
            DegradedDataWarning,
            stacklevel=4,
        )

    def record_guardrail(self, hit: GuardrailHit) -> None:
        with self._lock:
            self._guardrail_hits.append(hit)

    def record_quarantine(self, path: str) -> None:
        with self._lock:
            self._quarantined.append(str(path))

    def record_drift(self, event: DriftEvent) -> None:
        """Ledger one streaming drift-ladder decision (see repro.stream)."""
        with self._lock:
            self._drift_events.append(event)

    def health_report(self) -> HealthReport:
        """A snapshot of everything the guard layer has seen so far."""
        with self._lock:
            return HealthReport(
                kernels={
                    name: KernelHealth(
                        name=name,
                        calls=g.calls,
                        checks=g.checks,
                        tripped=g.tripped,
                    )
                    for name, g in self._guards.items()
                },
                divergences=list(self._divergences),
                guardrail_hits=list(self._guardrail_hits),
                artifacts_quarantined=list(self._quarantined),
                drift_events=list(self._drift_events),
            )


_registry: GuardRegistry | None = None
_registry_lock = threading.Lock()


def registry() -> GuardRegistry:
    """The process-wide guard registry (created lazily from the env)."""
    global _registry
    if _registry is None:
        with _registry_lock:
            if _registry is None:
                _registry = GuardRegistry()
    return _registry


def reset_guards(config: GuardConfig | None = None) -> GuardRegistry:
    """Replace the registry: fresh counters, breakers and ledger.

    Tests and benchmarks call this after changing guard environment
    variables; ``config`` overrides the environment entirely.
    """
    global _registry
    with _registry_lock:
        _registry = GuardRegistry(config)
    return _registry


def kernel_guard(name: str) -> KernelGuard:
    """The registered guard for ``name`` (created on first use)."""
    return registry().guard(name)


def inject_divergence(name: str, times: int = 1) -> None:
    """Force the next ``times`` checked calls of ``name`` to diverge.

    The injected check compares correct results, flags them as divergent,
    and trips the kernel's breaker — exercising the degradation machinery
    without producing wrong numbers (the fast result is still served).
    """
    registry().inject_divergence(name, times=times)


def health_report() -> HealthReport:
    """Snapshot the process-wide guard health ledger."""
    return registry().health_report()


def approx_equal(a, b, rel: float = 1e-9) -> bool:
    """Structural comparison with relative float tolerance.

    Recurses through dicts/lists/tuples; floats compare within ``rel``
    (matching the hot-path bench's equivalence gate), NaN equals NaN, and
    infinities must match exactly.  Everything else uses ``==``.
    """
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        return a.keys() == b.keys() and all(
            approx_equal(a[k], b[k], rel) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            approx_equal(x, y, rel) for x, y in zip(a, b)
        )
    if isinstance(a, float) or isinstance(b, float):
        try:
            fa, fb = float(a), float(b)
        except (TypeError, ValueError):
            return a == b
        if math.isnan(fa) or math.isnan(fb):
            return math.isnan(fa) and math.isnan(fb)
        if math.isinf(fa) or math.isinf(fb):
            return fa == fb
        return abs(fa - fb) <= rel * max(1.0, abs(fa), abs(fb))
    return a == b


def guarded_call(
    name: str,
    fast: Callable[[], object],
    oracle: Callable[[], object],
    compare: Callable[[object, object], bool] | None = None,
    detail: str = "",
):
    """Dispatch one *pure* kernel call through its guard.

    Runs ``fast()`` normally; on a scheduled check also replays
    ``oracle()`` under :func:`~repro.fastpath.force_scalar` and compares.
    When the breaker is tripped (or scalar fallback is forced) only the
    oracle runs.  Stateful kernels (predictor, cache, pipeline,
    ``simulate_run``) cannot use this helper — they snapshot their state
    and drive the guard primitives directly.
    """
    guard = registry().guard(name)
    if not guard.use_fast():
        return oracle()
    if not guard.should_check():
        return fast()
    result = fast()
    with force_scalar():
        expected = oracle()
    cmp = compare or approx_equal
    try:
        ok = bool(cmp(result, expected))
    except Exception as exc:  # a comparison crash is itself a divergence
        ok = False
        detail = detail or f"comparison failed: {exc!r}"
    if guard.resolve(ok, detail=detail):
        return result
    return expected
