"""``spire doctor``: scan and repair an experiment cache directory.

The doctor verifies the integrity of every cache entry and checkpoint
(header present, schema current, checksum matching), quarantines anything
that fails — the repair: bad entries become cache misses and re-simulate,
while the evidence stays on disk under ``.quarantine/`` — lists what is
already quarantined, and optionally prunes the quarantine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import DataError
from repro.guard.artifact import quarantine_dir, quarantine_file, verify_payload

__all__ = [
    "DoctorReport",
    "doctor_cache_dir",
    "probe_server",
    "render_server_health",
    "server_health_problems",
]


@dataclass
class DoctorReport:
    """Outcome of one cache-directory scan."""

    directory: str
    entries_scanned: int = 0
    entries_ok: int = 0
    entries_quarantined: list[tuple[str, str]] = field(default_factory=list)
    checkpoints_scanned: int = 0
    checkpoints_ok: int = 0
    checkpoints_quarantined: list[tuple[str, str]] = field(default_factory=list)
    quarantined_files: list[str] = field(default_factory=list)
    pruned: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the scan found nothing wrong and nothing quarantined."""
        return not (
            self.entries_quarantined
            or self.checkpoints_quarantined
            or self.quarantined_files
        )

    def render(self) -> str:
        lines = [
            f"doctor: {self.directory}",
            f"  entries: {self.entries_ok}/{self.entries_scanned} ok, "
            f"{len(self.entries_quarantined)} quarantined this scan",
            f"  checkpoints: {self.checkpoints_ok}/{self.checkpoints_scanned} "
            f"ok, {len(self.checkpoints_quarantined)} quarantined this scan",
        ]
        for name, reason in self.entries_quarantined:
            lines.append(f"  entry {name}: {reason}")
        for name, reason in self.checkpoints_quarantined:
            lines.append(f"  checkpoint {name}: {reason}")
        if self.quarantined_files:
            lines.append(f"  in quarantine ({len(self.quarantined_files)}):")
            for path in self.quarantined_files:
                lines.append(f"    {path}")
        else:
            lines.append("  quarantine is empty")
        if self.pruned:
            lines.append(f"  pruned {len(self.pruned)} quarantined file(s)")
        if self.ok:
            lines.append("  cache is healthy")
        return "\n".join(lines)


def _verify_file(path: Path, schema: str) -> str | None:
    """Why the artifact at ``path`` fails verification, or ``None``."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return f"unreadable: {exc}"
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return f"invalid JSON: {exc}"
    return verify_payload(payload, schema)


def doctor_cache_dir(
    directory: str | Path, prune: bool = False
) -> DoctorReport:
    """Scan an experiment cache directory; quarantine what fails.

    Raises :class:`~repro.errors.DataError` when ``directory`` does not
    exist.  ``prune=True`` additionally deletes everything sitting in the
    quarantine subdirectories after the scan.
    """
    from repro.runtime.cache import CACHE_FORMAT, CHECKPOINT_FORMAT

    directory = Path(directory)
    if not directory.is_dir():
        raise DataError(f"cache directory {directory} does not exist")
    report = DoctorReport(directory=str(directory))

    for path in sorted(directory.glob("*.json")):
        report.entries_scanned += 1
        reason = _verify_file(path, CACHE_FORMAT)
        if reason is None:
            report.entries_ok += 1
        else:
            quarantine_file(path, reason)
            report.entries_quarantined.append((path.name, reason))

    for ckpt_dir in sorted(directory.glob("*.ckpt")):
        if not ckpt_dir.is_dir():
            continue
        for path in sorted(ckpt_dir.glob("*.json")):
            report.checkpoints_scanned += 1
            reason = _verify_file(path, CHECKPOINT_FORMAT)
            if reason is None:
                report.checkpoints_ok += 1
            else:
                quarantine_file(path, reason)
                report.checkpoints_quarantined.append(
                    (f"{ckpt_dir.name}/{path.name}", reason)
                )

    quarantine_roots = [quarantine_dir(directory)]
    quarantine_roots.extend(
        quarantine_dir(d) for d in sorted(directory.glob("*.ckpt"))
    )
    for root in quarantine_roots:
        if not root.is_dir():
            continue
        for path in sorted(p for p in root.iterdir() if p.is_file()):
            report.quarantined_files.append(str(path))
            if prune:
                try:
                    path.unlink()
                    report.pruned.append(str(path))
                except OSError:
                    pass
        if prune:
            try:
                root.rmdir()
            except OSError:
                pass

    return report


def probe_server(url: str, timeout: float = 5.0) -> dict:
    """Fetch ``/health`` from a running ``spire serve`` process.

    ``url`` is either the server root (``http://host:port``) or the
    health endpoint itself.  Returns the decoded JSON payload; raises
    :class:`~repro.errors.DataError` when the server is unreachable or
    does not answer with a SPIRE health document.
    """
    from urllib.error import URLError
    from urllib.request import urlopen

    target = url.rstrip("/")
    if not target.endswith("/health"):
        target += "/health"
    if not target.startswith(("http://", "https://")):
        target = "http://" + target
    try:
        with urlopen(target, timeout=timeout) as response:  # noqa: S310
            payload = json.loads(response.read().decode("utf-8"))
    except (URLError, OSError, TimeoutError, ValueError) as exc:
        raise DataError(f"cannot probe server at {target}: {exc}") from None
    if not isinstance(payload, dict) or "health" not in payload:
        raise DataError(f"{target}: response is not a SPIRE health document")
    return payload


def render_server_health(payload: dict) -> str:
    """Human-readable view of a :func:`probe_server` payload.

    Starts from the server's own render and appends the long-lived
    process detail the one-line summary elides: micro-batch fill
    histogram, hostility-breaker counters, and per-kernel guard state.
    """
    lines = [str(payload.get("render", "")).rstrip()]
    health = payload.get("health", {})
    serve = health.get("serve_state") or {}

    fill = serve.get("batch_fill", {})
    histogram = fill.get("histogram") or {}
    if any(histogram.values()):
        buckets = "  ".join(
            f"{label}:{count}" for label, count in histogram.items() if count
        )
        lines.append(f"  batch fill histogram: {buckets}")

    hostility = serve.get("hostility") or {}
    if hostility.get("spans_attempted"):
        lines.append(
            "  hostility breaker: "
            f"{hostility.get('spans_attempted', 0)} span(s) attempted, "
            f"{hostility.get('spans_rejected', 0)} rejected, "
            f"coverage {hostility.get('span_coverage', 0.0):.2f}"
        )

    quotas = serve.get("quotas") or {}
    if quotas.get("rejected"):
        per_model = quotas.get("per_model") or {}
        detail = "  ".join(
            f"{name}:{count}" for name, count in sorted(per_model.items())
        )
        lines.append(
            f"  admission: {quotas['rejected']} request(s) quota-rejected"
            + (f" ({detail})" if detail else "")
        )

    rollover = serve.get("rollover") or {}
    if rollover.get("installs") or rollover.get("rejected"):
        lines.append(
            f"  rollover: {rollover.get('installs', 0)} install(s), "
            f"{rollover.get('rejected', 0)} rejected, "
            f"{rollover.get('adopted', 0)} adoption(s)"
        )

    drain = serve.get("drain") or {}
    if drain.get("count"):
        lines.append(
            f"  drain: {drain['count']} drain(s), last "
            f"{drain.get('last_ms', 0.0):.1f} ms, "
            f"{drain.get('flushed', 0)} queued request(s) flushed"
        )

    fleet = serve.get("fleet") or {}
    if fleet:
        worker = serve.get("worker")
        prefix = f"  fleet (seen from worker {worker}): " if worker is not None else "  fleet: "
        lines.append(
            prefix
            + f"{fleet.get('workers', 0)} slot(s), "
            f"{fleet.get('restart_total', 0)} restart(s), "
            f"stale {fleet.get('stale_slots', [])}"
        )
        for slot in fleet.get("slots", []):
            state = (
                "stale"
                if slot.get("stale")
                else ("ready" if slot.get("ready") else "starting")
            )
            counters = slot.get("counters") or {}
            lines.append(
                f"    slot {slot.get('slot')}: {state}, pid {slot.get('pid')}, "
                f"{slot.get('restarts', 0)} restart(s), "
                f"{counters.get('requests', 0)} request(s)"
            )

    for name, kernel in sorted(health.get("kernels", {}).items()):
        state = "tripped" if kernel.get("tripped") else "fast"
        lines.append(
            f"  guard {name}: {kernel.get('calls', 0)} call(s), "
            f"{kernel.get('checks', 0)} oracle check(s), {state}"
        )
    return "\n".join(line for line in lines if line)


def server_health_problems(payload: dict) -> list[str]:
    """Fleet-level defects in a :func:`probe_server` payload.

    Returns one human-readable string per problem; an empty list means
    the serving fleet looks healthy.  ``spire doctor --serve-url`` exits
    nonzero when this list is non-empty, so a supervisor with stale
    (flapping) worker slots or a registry that has quarantined model
    artifacts fails CI even though the surviving workers still answer
    ``/health`` with ``ok: true``.
    """
    problems: list[str] = []
    health = payload.get("health", {})
    if not payload.get("ok", False):
        problems.append("server reports unhealthy guard state")
    serve = health.get("serve_state") or {}

    fleet = serve.get("fleet") or {}
    stale = fleet.get("stale_slots") or []
    if stale:
        problems.append(
            f"{len(stale)} worker slot(s) stale after repeated crashes: {stale}"
        )
    for slot in fleet.get("slots", []):
        if slot.get("alive") is False and not slot.get("stale"):
            problems.append(f"worker slot {slot.get('slot')} is down (restarting)")

    registry = serve.get("registry") or {}
    if registry.get("verify_failures"):
        problems.append(
            f"{registry['verify_failures']} model artifact(s) failed "
            "verification and were quarantined"
        )

    rollover = serve.get("rollover") or {}
    if rollover.get("rejected"):
        problems.append(
            f"{rollover['rejected']} rollover install(s) rejected "
            "(artifacts quarantined in the staging area)"
        )
    return problems
