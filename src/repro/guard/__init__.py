"""Runtime self-verification and graceful degradation (``repro.guard``).

Four pieces, built for the property production serving stacks have —
every optimized path is checked in production and degrades per-component,
not globally:

- :mod:`repro.guard.dispatch` — per-kernel guarded dispatch: sampled
  scalar-oracle checks with a circuit breaker per vectorized kernel;
- :mod:`repro.guard.guardrails` — cheap stage-boundary numeric invariant
  checks;
- :mod:`repro.guard.artifact` — integrity headers, checksum verification
  and quarantine for on-disk artifacts (plus ``spire doctor`` in
  :mod:`repro.guard.doctor`);
- :mod:`repro.guard.health` — the :class:`HealthReport` telemetry that
  rides on :class:`~repro.runtime.runner.RunReport` and CLI output.

See ``docs/robustness.md`` ("Guarded dispatch & artifact integrity").
"""

from repro.guard.dispatch import (
    DEFAULT_CHECK_RATE,
    GUARDED_KERNELS,
    GuardConfig,
    KernelGuard,
    approx_equal,
    guarded_call,
    health_report,
    inject_divergence,
    kernel_guard,
    registry,
    reset_guards,
)
from repro.guard.health import (
    DivergenceEvent,
    DriftEvent,
    GuardrailHit,
    HealthReport,
    KernelHealth,
)

__all__ = [
    "DEFAULT_CHECK_RATE",
    "DivergenceEvent",
    "DriftEvent",
    "GUARDED_KERNELS",
    "GuardConfig",
    "GuardrailHit",
    "HealthReport",
    "KernelGuard",
    "KernelHealth",
    "approx_equal",
    "guarded_call",
    "health_report",
    "inject_divergence",
    "kernel_guard",
    "registry",
    "reset_guards",
]
