"""Health telemetry for the guarded-dispatch layer.

A :class:`HealthReport` is the run-level summary of what the guard layer
observed: how many sampled oracle checks ran per kernel, which kernels
diverged and tripped their breaker to the scalar path, which numeric
guardrails fired, and which on-disk artifacts failed integrity
verification and were quarantined.  It rides on
:class:`~repro.runtime.runner.RunReport` and surfaces in ``spire report``
and ``spire faultsim`` output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DivergenceEvent",
    "DriftEvent",
    "GuardrailHit",
    "HealthReport",
    "KernelHealth",
]


@dataclass(frozen=True, slots=True)
class DivergenceEvent:
    """One sampled oracle check whose fast-path result did not match."""

    kernel: str
    call_index: int      # 0-based call counter of the kernel at divergence
    detail: str = ""
    injected: bool = False   # a diverge-kernel fault, not a real mismatch


@dataclass(frozen=True, slots=True)
class GuardrailHit:
    """One stage-boundary numeric invariant that failed."""

    stage: str
    reason: str


@dataclass(frozen=True, slots=True)
class DriftEvent:
    """One streaming drift-ladder decision for a metric roofline.

    ``action`` is the degradation rung taken: ``"absorbed"`` (violations
    within tolerance, folded into the incremental update), ``"refit"``
    (the metric was refuted, quarantined and refit from recent windows),
    ``"quarantined"`` (refuted but too little recent data to refit — the
    metric is excluded from the serving model), ``"stalled"`` (a window
    sealed with no usable samples), or ``"stale"`` (the drift monitor gave
    up on incremental repair; a batch retrain is required).
    """

    metric: str
    window: int          # 0-based sealed-window index at which it fired
    action: str
    violations: int = 0
    samples: int = 0
    worst_excess: float = 0.0  # largest throughput overshoot past the bound
    detail: str = ""


@dataclass
class KernelHealth:
    """Per-kernel guard accounting."""

    name: str
    calls: int = 0       # fast-path dispatches observed
    checks: int = 0      # sampled oracle checks actually run
    tripped: bool = False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "checks": self.checks,
            "tripped": self.tripped,
        }


@dataclass
class HealthReport:
    """What the guard layer saw during one process/run."""

    kernels: dict[str, KernelHealth] = field(default_factory=dict)
    divergences: list[DivergenceEvent] = field(default_factory=list)
    guardrail_hits: list[GuardrailHit] = field(default_factory=list)
    artifacts_quarantined: list[str] = field(default_factory=list)
    drift_events: list[DriftEvent] = field(default_factory=list)
    #: Long-lived-process state attached by a running server before the
    #: report is serialized: model-registry occupancy and evictions,
    #: micro-batch fill histogram, backpressure counters (see
    #: :mod:`repro.serve.stats`).  ``None`` for batch runs.
    serve_state: "dict | None" = None

    @property
    def checks_run(self) -> int:
        return sum(k.checks for k in self.kernels.values())

    @property
    def tripped_kernels(self) -> list[str]:
        return sorted(name for name, k in self.kernels.items() if k.tripped)

    @property
    def drifted_metrics(self) -> list[str]:
        """Metrics whose rooflines the stream refuted (beyond absorption)."""
        return sorted(
            {e.metric for e in self.drift_events if e.action != "absorbed"}
        )

    @property
    def ok(self) -> bool:
        # Absorbed drift is business as usual for a live stream; anything
        # further down the ladder means the model needed repair.
        return not (
            self.divergences
            or self.guardrail_hits
            or self.artifacts_quarantined
            or self.tripped_kernels
            or self.drifted_metrics
        )

    def to_dict(self) -> dict:
        payload = {
            "kernels": {n: k.to_dict() for n, k in sorted(self.kernels.items())},
            "divergences": [
                {
                    "kernel": d.kernel,
                    "call_index": d.call_index,
                    "detail": d.detail,
                    "injected": d.injected,
                }
                for d in self.divergences
            ],
            "guardrail_hits": [
                {"stage": h.stage, "reason": h.reason} for h in self.guardrail_hits
            ],
            "artifacts_quarantined": list(self.artifacts_quarantined),
            "drift_events": [
                {
                    "metric": e.metric,
                    "window": e.window,
                    "action": e.action,
                    "violations": e.violations,
                    "samples": e.samples,
                    "worst_excess": e.worst_excess,
                    "detail": e.detail,
                }
                for e in self.drift_events
            ],
        }
        if self.serve_state is not None:
            payload["serve_state"] = self.serve_state
        return payload

    def render(self) -> str:
        """A terse human-readable summary for CLI output."""
        checked = sum(1 for k in self.kernels.values() if k.checks)
        lines = [
            f"guard: {self.checks_run} oracle check(s) across {checked} "
            f"kernel(s), {len(self.divergences)} divergence(s), "
            f"{len(self.guardrail_hits)} guardrail hit(s), "
            f"{len(self.artifacts_quarantined)} artifact(s) quarantined"
        ]
        if self.drift_events:
            lines[0] += f", {len(self.drift_events)} drift event(s)"
        for event in self.divergences:
            tag = "injected" if event.injected else "DIVERGED"
            detail = f" ({event.detail})" if event.detail else ""
            lines.append(
                f"  {event.kernel}: {tag} at call {event.call_index}{detail}"
            )
        if self.tripped_kernels:
            lines.append(
                "  tripped to scalar: " + ", ".join(self.tripped_kernels)
            )
        for hit in self.guardrail_hits:
            lines.append(f"  guardrail [{hit.stage}]: {hit.reason}")
        for path in self.artifacts_quarantined:
            lines.append(f"  quarantined: {path}")
        for event in self.drift_events:
            stats = (
                f"{event.violations}/{event.samples} violation(s)"
                if event.samples
                else "no samples"
            )
            detail = f" ({event.detail})" if event.detail else ""
            lines.append(
                f"  drift [{event.metric}] window {event.window}: "
                f"{event.action}, {stats}{detail}"
            )
        if self.serve_state is not None:
            registry = self.serve_state.get("registry", {})
            fill = self.serve_state.get("batch_fill", {})
            back = self.serve_state.get("backpressure", {})
            lines.append(
                "  serve: "
                f"{self.serve_state.get('requests', 0)} request(s), "
                f"{self.serve_state.get('batches', 0)} micro-batch(es), "
                f"mean fill {fill.get('mean', 0.0):.2f}"
            )
            lines.append(
                f"  serve registry: {registry.get('occupancy', 0)}/"
                f"{registry.get('capacity', 0)} resident, "
                f"{registry.get('loads', 0)} load(s), "
                f"{registry.get('evictions', 0)} eviction(s), "
                f"{registry.get('verify_failures', 0)} verify failure(s)"
            )
            lines.append(
                f"  serve backpressure: {back.get('rejected', 0)} rejected, "
                f"{back.get('shed', 0)} shed, queue high-water "
                f"{back.get('queue_high_water', 0)}"
            )
        return "\n".join(lines)
