"""Stage-boundary numeric guardrails.

Cheap invariant checks at the seams between pipeline stages: values that
should be finite and non-negative (times, work, throughput estimates),
fronts that should be monotone, bound violations that should be small.
A failed check is a :class:`~repro.guard.health.GuardrailHit` handled per
the registry policy: ``record`` (default) logs it into the health ledger
and warns, ``raise`` raises :class:`~repro.errors.GuardrailViolation`,
``off`` disables the checks entirely.

Unlike the sampled oracle checks in :mod:`repro.guard.dispatch`, these
run on every call — they are O(result) screens, not shadow computations.
"""

from __future__ import annotations

import math
import warnings
from typing import Mapping, Sequence

import numpy as np

from repro.errors import DegradedDataWarning, GuardrailViolation
from repro.guard.dispatch import registry
from repro.guard.health import GuardrailHit

__all__ = [
    "check_bound_violation",
    "check_estimates",
    "check_pareto_front",
    "check_sample_columns",
    "guardrail_hit",
]


def guardrail_hit(stage: str, reason: str) -> None:
    """Report one failed invariant per the registry's guardrail policy."""
    reg = registry()
    policy = reg.config.guardrail_policy
    if policy == "off":
        return
    if policy == "raise":
        raise GuardrailViolation(f"guardrail [{stage}]: {reason}")
    reg.record_guardrail(GuardrailHit(stage=stage, reason=reason))
    warnings.warn(
        f"guardrail [{stage}]: {reason}", DegradedDataWarning, stacklevel=3
    )


def _enabled() -> bool:
    return registry().config.guardrail_policy != "off"


def check_pareto_front(
    front: Sequence[tuple[float, float]], stage: str = "pareto-front"
) -> None:
    """A maximizing front must have strictly decreasing x, increasing y."""
    if not _enabled() or len(front) < 2:
        return
    for (x0, y0), (x1, y1) in zip(front, front[1:]):
        if not (x1 < x0 and y1 > y0):
            guardrail_hit(
                stage,
                f"non-monotone front: ({x0:g}, {y0:g}) -> ({x1:g}, {y1:g})",
            )
            return


def check_estimates(
    per_metric: Mapping[str, float], stage: str = "estimate"
) -> None:
    """Per-metric throughput estimates must be finite and non-negative."""
    if not _enabled():
        return
    for metric, value in per_metric.items():
        if math.isnan(value) or math.isinf(value):
            guardrail_hit(stage, f"non-finite estimate for {metric!r}: {value}")
            return
        if value < 0:
            guardrail_hit(stage, f"negative estimate for {metric!r}: {value}")
            return


def check_sample_columns(
    time: np.ndarray,
    work: np.ndarray,
    metric_count: np.ndarray,
    stage: str = "train-input",
) -> None:
    """Sanitized sample columns must be finite with positive time."""
    if not _enabled() or not len(time):
        return
    if (
        not bool(np.isfinite(time).all())
        or not bool(np.isfinite(work).all())
        or not bool(np.isfinite(metric_count).all())
    ):
        guardrail_hit(stage, "non-finite value in sanitized sample columns")
        return
    if bool((time <= 0).any()) or bool((work < 0).any()) or bool(
        (metric_count < 0).any()
    ):
        guardrail_hit(stage, "negative time/work/count survived sanitization")


def check_bound_violation(
    value: float, stage: str = "bound-violation"
) -> None:
    """A mean absolute bound violation must be a finite non-negative float."""
    if not _enabled():
        return
    if math.isnan(value) or math.isinf(value):
        guardrail_hit(stage, f"non-finite bound violation: {value}")
    elif value < 0:
        guardrail_hit(stage, f"negative bound violation: {value}")
