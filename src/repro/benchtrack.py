"""Benchmark-artifact aggregation: the perf trajectory across PRs.

Every bench in ``benchmarks/`` writes a ``BENCH_<name>.json`` artifact
with free-form structure.  This module distills the comparable numbers
out of all of them — speedups, guard overhead percentages, wavefront
span coverage — into one flat ``BENCH_summary.json`` keyed by artifact
and dotted metric path, so the performance trajectory is
machine-readable across PRs without every consumer learning every
bench's schema.

The same extraction feeds the CI regression gate: a committed
reduced-scale baseline (``benchmarks/baselines/``) is compared against
a fresh run by *ratio* — wall clock is far too noisy across hosts, but
a speedup collapsing to half its recorded value, or span coverage
falling through its floor, is a real regression.

Used by ``benchmarks/collect.py`` (standalone script) and the
``spire bench-summary`` subcommand.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "check_against_baseline",
    "extract_metrics",
    "load_baseline",
    "summarize",
    "write_summary",
]

SUMMARY_NAME = "BENCH_summary.json"

# Leaf keys worth tracking across PRs.  Timings in seconds are
# deliberately excluded: they do not compare across hosts, while these
# ratios and percentages do.
_LEAF_EXACT = ("span_coverage", "guard_overhead_pct")
_LEAF_PREFIXES = ("speedup",)


def _tracked(leaf: str) -> bool:
    return leaf in _LEAF_EXACT or leaf.startswith(_LEAF_PREFIXES)


def extract_metrics(payload) -> "dict[str, float]":
    """Flatten one artifact's tracked numeric leaves to dotted paths."""
    metrics: dict[str, float] = {}

    def walk(node, prefix: str) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                path = f"{prefix}.{key}" if prefix else str(key)
                if isinstance(value, (dict, list)):
                    walk(value, path)
                elif (
                    _tracked(str(key))
                    and isinstance(value, (int, float))
                    and not isinstance(value, bool)
                ):
                    metrics[path] = float(value)
        elif isinstance(node, list):
            for index, value in enumerate(node):
                walk(value, f"{prefix}[{index}]")

    walk(payload, "")
    return metrics


def summarize(out_dir: "Path | str") -> dict:
    """Merge every ``BENCH_*.json`` under ``out_dir`` into one record."""
    out_dir = Path(out_dir)
    artifacts: dict[str, dict[str, float]] = {}
    for path in sorted(out_dir.glob("BENCH_*.json")):
        if path.name == SUMMARY_NAME:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        name = path.stem[len("BENCH_") :]
        artifacts[name] = extract_metrics(payload)
    return {"artifacts": artifacts}


def write_summary(out_dir: "Path | str") -> Path:
    """Write ``BENCH_summary.json`` next to the artifacts it merges."""
    out_dir = Path(out_dir)
    summary = summarize(out_dir)
    target = out_dir / SUMMARY_NAME
    target.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return target


def load_baseline(path: "Path | str") -> dict:
    """Load a gate baseline from a summary file, artifact, or directory.

    Three shapes are accepted, so committed baselines can grow one
    artifact per bench instead of one monolithic summary:

    - a summary file (``{"artifacts": {...}}``) is returned as-is;
    - a single ``BENCH_<name>.json`` artifact becomes a one-entry
      summary keyed by ``<name>``;
    - a directory is merged: every ``*.json`` inside contributes either
      its ``artifacts`` mapping (summary-shaped files) or its own
      extracted metrics (artifact-shaped files).
    """
    path = Path(path)
    if path.is_dir():
        merged: dict[str, dict[str, float]] = {}
        for entry in sorted(path.glob("*.json")):
            for name, metrics in load_baseline(entry)["artifacts"].items():
                merged.setdefault(name, {}).update(metrics)
        return {"artifacts": merged}
    payload = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(payload, dict) and isinstance(
        payload.get("artifacts"), dict
    ):
        return payload
    name = path.stem
    if name.startswith("BENCH_"):
        name = name[len("BENCH_") :]
    if name.endswith("_baseline"):
        name = name[: -len("_baseline")]
    return {"artifacts": {name: extract_metrics(payload)}}


def check_against_baseline(
    summary: dict,
    baseline: dict,
    min_ratio: float = 0.5,
    min_coverage: "float | None" = None,
) -> "list[str]":
    """Ratio-gate a fresh summary against a committed baseline.

    Returns human-readable failure strings (empty means the gate
    passes).  Rules:

    - every ``speedup*`` metric present in both must hold at least
      ``min_ratio`` of its baseline value;
    - every ``span_coverage`` metric in the fresh summary must be at
      least ``min_coverage`` (when a floor is given), regardless of the
      baseline — coverage regressions hide behind stable speedups.

    Metrics missing from either side are skipped: benches come and go
    across PRs and the gate should only compare what both runs measured.
    """
    failures: list[str] = []
    base_artifacts = baseline.get("artifacts", {})
    for name, metrics in summary.get("artifacts", {}).items():
        base_metrics = base_artifacts.get(name, {})
        for path, value in metrics.items():
            leaf = path.rsplit(".", 1)[-1]
            if leaf.startswith("speedup"):
                base = base_metrics.get(path)
                if isinstance(base, (int, float)) and base > 0:
                    floor = base * min_ratio
                    if value < floor:
                        failures.append(
                            f"{name}:{path} = {value:g} fell below "
                            f"{floor:g} ({min_ratio:g}x of baseline "
                            f"{base:g})"
                        )
            elif leaf == "span_coverage" and min_coverage is not None:
                if value < min_coverage:
                    failures.append(
                        f"{name}:{path} = {value:g} below the "
                        f"coverage floor {min_coverage:g}"
                    )
    return failures
