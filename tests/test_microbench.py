"""Unit tests for the per-metric microbenchmark generator."""

import random

import pytest

from repro.errors import ConfigError
from repro.tma import TopDownAnalyzer
from repro.counters import CollectionConfig, SampleCollector
from repro.uarch import CoreModel, skylake_gold_6126
from repro.workloads.microbench import (
    KNOBS,
    microbenchmark_for,
    microbenchmark_suite,
)


class TestGeneration:
    def test_suite_covers_all_knobs(self):
        suite = microbenchmark_suite()
        assert len(suite) == len(KNOBS)
        names = {w.name for w in suite}
        assert all(name.startswith("ubench-") for name in names)
        assert len(names) == len(suite)

    @pytest.mark.parametrize("knob", KNOBS)
    def test_each_knob_materializes(self, knob):
        workload = microbenchmark_for(knob, steps=6)
        specs = workload.specs(12, 5_000)
        assert len(specs) == 12

    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigError):
            microbenchmark_for("prefetcher")

    def test_too_few_steps_rejected(self):
        with pytest.raises(ConfigError):
            microbenchmark_for("ilp", steps=1)

    def test_sweep_monotonically_stresses(self):
        """Later phases must hurt IPC more than earlier ones."""
        machine = skylake_gold_6126()
        core = CoreModel(machine)
        for knob in ("branch-mispredict", "l1-miss", "dsb-coverage", "ilp"):
            workload = microbenchmark_for(knob, steps=6)
            ipcs = [
                core.simulate_window(phase.spec.with_instructions(20_000)).ipc
                for phase in workload.phases
            ]
            assert ipcs[0] > ipcs[-1], knob

    @pytest.mark.parametrize(
        "knob,expected",
        [
            ("branch-mispredict", "Bad Speculation"),
            ("l3-miss", "Memory"),
            ("dsb-coverage", "Front-End"),
            ("ilp", "Core"),
            ("divider", "Core"),
        ],
    )
    def test_heaviest_phase_exhibits_intended_bottleneck(self, knob, expected):
        machine = skylake_gold_6126()
        core = CoreModel(machine)
        collector = SampleCollector(
            machine, config=CollectionConfig(multiplex=False, windows_per_period=4)
        )
        workload = microbenchmark_for(knob, steps=6)
        heavy = workload.phases[-1].spec.with_instructions(20_000)
        result = collector.collect(core, [heavy] * 8)
        tma = TopDownAnalyzer(machine).analyze(result.full_counts)
        assert tma.main_bottleneck() == expected


class TestIntensityCoverage:
    def test_sweep_spans_orders_of_magnitude(self):
        """The swept metric's intensity must cover a wide range — the
        §III-A goal the microbenchmarks exist for."""
        machine = skylake_gold_6126()
        core = CoreModel(machine)
        collector = SampleCollector(
            machine,
            config=CollectionConfig(
                multiplex=False,
                windows_per_period=1,
                events=("br_misp_retired.all_branches",),
            ),
        )
        workload = microbenchmark_for("branch-mispredict", steps=10)
        specs = workload.specs(10, 20_000)
        result = collector.collect(core, specs, rng=random.Random(0))
        intensities = [
            s.intensity
            for s in result.samples.for_metric("br_misp_retired.all_branches")
            if s.has_finite_intensity
        ]
        assert max(intensities) / min(intensities) > 100.0
