"""Unit tests for the right-region fitting algorithm (paper Fig. 6)."""

import random

import pytest

from repro.core.right_fit import RightFitOptions, fit_right_region
from repro.errors import FitError
from repro.geometry.piecewise import PiecewiseLinear


def as_function(result, apex):
    bps = list(result.breakpoints)
    if bps[0].as_tuple() != tuple(apex):
        bps = [type(bps[0])(*apex)] + bps
    return PiecewiseLinear(bps)


def non_vertical_slopes(breakpoints):
    return [
        (b.y - a.y) / (b.x - a.x)
        for a, b in zip(breakpoints, breakpoints[1:])
        if b.x > a.x
    ]


class TestBasics:
    def test_no_points_gives_flat_fit(self):
        result = fit_right_region([], apex=(2.0, 3.0))
        assert [bp.as_tuple() for bp in result.breakpoints] == [(2.0, 3.0)]

    def test_single_decreasing_point(self):
        result = fit_right_region([(10.0, 1.0)], apex=(2.0, 3.0))
        f = PiecewiseLinear(result.breakpoints)
        assert f(2.0) == 3.0
        assert f(100.0) >= 1.0 - 1e-9

    def test_covers_all_points(self):
        points = [(3.0, 2.5), (5.0, 2.0), (8.0, 1.2), (12.0, 1.0), (6.0, 0.5)]
        result = fit_right_region(points, apex=(2.0, 3.0))
        f = PiecewiseLinear(result.breakpoints)
        assert f.is_upper_bound_of(points)

    def test_decreasing_left_to_right(self):
        points = [(3.0, 2.5), (5.0, 2.0), (8.0, 1.2), (12.0, 1.0)]
        result = fit_right_region(points, apex=(2.0, 3.0))
        ys = [bp.y for bp in result.breakpoints]
        assert all(b <= a + 1e-12 for a, b in zip(ys, ys[1:]))

    def test_concave_up_after_horizontal_exception(self):
        points = [(3.0, 2.5), (5.0, 2.0), (8.0, 1.2), (12.0, 1.0)]
        result = fit_right_region(points, apex=(2.0, 3.0))
        slopes = non_vertical_slopes(result.breakpoints)
        if result.used_horizontal_exception:
            # Drop the horizontal piece; the rest must be concave-up.
            slopes = slopes[1:]
        assert all(b >= a - 1e-9 for a, b in zip(slopes, slopes[1:]))

    def test_rejects_points_left_of_apex(self):
        with pytest.raises(FitError, match="left of the apex"):
            fit_right_region([(1.0, 1.0)], apex=(2.0, 3.0))

    def test_rejects_points_above_apex(self):
        with pytest.raises(FitError, match="exceeds the apex"):
            fit_right_region([(3.0, 5.0)], apex=(2.0, 3.0))

    def test_rejects_non_finite_points(self):
        with pytest.raises(FitError, match="finite"):
            fit_right_region([(float("inf"), 1.0)], apex=(2.0, 3.0))

    def test_rejects_infinite_level_above_apex(self):
        with pytest.raises(FitError):
            fit_right_region([], apex=(2.0, 3.0), infinite_throughputs=[4.0])

    def test_options_validation(self):
        with pytest.raises(FitError):
            RightFitOptions(max_front_points=1)


class TestParetoStructure:
    def test_front_excludes_dominated_samples(self):
        points = [(3.0, 2.5), (4.0, 1.0), (5.0, 2.0)]  # (4,1) dominated by (5,2)
        result = fit_right_region(points, apex=(2.0, 3.0))
        assert (4.0, 1.0) not in result.front

    def test_front_is_sorted_right_to_left(self):
        points = [(3.0, 2.5), (5.0, 2.0), (8.0, 1.2)]
        result = fit_right_region(points, apex=(2.0, 3.0))
        xs = [x for x, _ in result.front]
        assert xs == sorted(xs, reverse=True)

    def test_flat_tail_beyond_last_sample(self):
        points = [(3.0, 2.5), (10.0, 1.0)]
        result = fit_right_region(points, apex=(2.0, 3.0))
        f = PiecewiseLinear(result.breakpoints)
        assert f(10.0) == f(1000.0)

    def test_infinite_samples_pull_entry_point(self):
        # With many infinite-intensity samples at low throughput, entering
        # the chain at a high point makes the flat tail expensive; the fit
        # should enter further right (lower).
        points = [(3.0, 2.5), (30.0, 0.5)]
        no_inf = fit_right_region(points, apex=(2.0, 3.0))
        with_inf = fit_right_region(
            points, apex=(2.0, 3.0), infinite_throughputs=[0.5] * 50
        )
        f_no = PiecewiseLinear(no_inf.breakpoints)
        f_inf = PiecewiseLinear(with_inf.breakpoints)
        assert f_inf(1e6) <= f_no(1e6) + 1e-9


class TestFigure6Semantics:
    # A five-point Pareto front like the paper's A-E example.
    FRONT = [(16.0, 1.0), (12.0, 2.0), (9.0, 6.0), (6.0, 7.0), (2.0, 10.0)]

    def test_all_front_points_present(self):
        result = fit_right_region(self.FRONT, apex=(2.0, 10.0))
        assert result.front == self.FRONT

    def test_fit_is_valid_upper_bound(self):
        result = fit_right_region(self.FRONT, apex=(2.0, 10.0))
        f = PiecewiseLinear(result.breakpoints)
        assert f.is_upper_bound_of(self.FRONT)

    def test_shortest_path_beats_visiting_every_point(self):
        # The optimal fit's error can never exceed the error of the fit
        # that uses the horizontal segment from the chain's best entry.
        result = fit_right_region(self.FRONT, apex=(2.0, 10.0))
        # Error of the trivial fit entering at the rightmost point and
        # jumping straight to the horizontal exception:
        apex_y = 10.0
        trivial = sum((apex_y - y) ** 2 for _, y in self.FRONT[1:-1])
        assert result.total_error <= trivial + 1e-9

    def test_path_starts_and_ends_correctly(self):
        result = fit_right_region(self.FRONT, apex=(2.0, 10.0))
        assert result.path[0] == "start"
        assert result.path[-1] == "end"


class TestFrontThinning:
    def test_large_front_still_upper_bound(self):
        rng = random.Random(0)
        # A dense concave cloud creating a large Pareto front.
        points = []
        for _ in range(500):
            x = rng.uniform(2.0, 200.0)
            y = 50.0 / x * rng.uniform(0.8, 1.0)
            points.append((x, min(y, 10.0)))
        apex = (2.0, 10.0)
        options = RightFitOptions(max_front_points=8)
        result = fit_right_region(points, apex, options=options)
        f = PiecewiseLinear(result.breakpoints)
        assert f.is_upper_bound_of(points)

    def test_thinning_increases_or_keeps_error(self):
        rng = random.Random(1)
        points = []
        for _ in range(300):
            x = rng.uniform(2.0, 100.0)
            points.append((x, min(10.0, 40.0 / x * rng.uniform(0.7, 1.0))))
        apex = (2.0, 10.0)
        fine = fit_right_region(points, apex, options=RightFitOptions(max_front_points=64))
        coarse = fit_right_region(points, apex, options=RightFitOptions(max_front_points=4))
        assert coarse.total_error >= fine.total_error - 1e-6


class TestRandomizedInvariants:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_clouds(self, seed):
        rng = random.Random(seed)
        apex = (1.0, 5.0)
        points = []
        for _ in range(rng.randrange(1, 80)):
            x = rng.uniform(1.0, 300.0)
            y = rng.uniform(0.01, 5.0)
            points.append((x, y))
        inf_levels = [rng.uniform(0.01, 5.0) for _ in range(rng.randrange(0, 5))]
        result = fit_right_region(points, apex, infinite_throughputs=inf_levels)
        f = PiecewiseLinear(result.breakpoints)
        assert f.is_upper_bound_of(points)
        # The tail must cover infinite-intensity samples indirectly: it may
        # sit below them only if no finite entry exists above; by
        # construction the tail is a Pareto throughput, so check bound:
        ys = [bp.y for bp in result.breakpoints]
        assert all(b <= a + 1e-12 for a, b in zip(ys, ys[1:]))
        assert result.total_error >= 0.0
