"""Unit tests for cross-model roofline comparison."""

import pytest

from repro.core.compare import compare_models, render_comparison
from repro.core.ensemble import SpireModel
from repro.core.sample import Sample, SampleSet
from repro.errors import EstimationError


def sample(metric, intensity, throughput, work=1000.0):
    return Sample(
        metric, time=work / throughput, work=work, metric_count=work / intensity
    )


def model_with_scale(scale, rng):
    """A model whose throughput is ``scale`` times the reference curve."""
    samples = SampleSet()
    for _ in range(300):
        i = rng.uniform(1, 50)
        p = scale * (4 * i / (i + 6)) * rng.uniform(0.5, 1.0)
        samples.add(sample("stalls", i, p))
        i = rng.uniform(1, 100)
        p = scale * (12 / (3 + i)) * rng.uniform(0.5, 1.0)
        samples.add(sample("dsb", i, p))
    return SpireModel.train(samples)


class TestCompareModels:
    def test_identical_models_ratio_one(self, rng):
        model = model_with_scale(1.0, rng)
        comparisons = compare_models(model, model)
        for c in comparisons:
            assert c.mean_ratio == pytest.approx(1.0)
            assert c.min_ratio == pytest.approx(1.0)
            assert c.max_ratio == pytest.approx(1.0)

    def test_scaled_model_detected(self, rng):
        import random

        a = model_with_scale(1.0, rng)
        b = model_with_scale(0.5, random.Random(99))
        comparisons = compare_models(a, b)
        for c in comparisons:
            assert c.mean_ratio < 0.9
            assert c.b_is_more_sensitive

    def test_sorted_most_sensitive_first(self, rng):
        import random

        a = model_with_scale(1.0, rng)
        b = model_with_scale(0.7, random.Random(5))
        comparisons = compare_models(a, b)
        ratios = [c.mean_ratio for c in comparisons]
        assert ratios == sorted(ratios)

    def test_no_shared_metrics_rejected(self, rng):
        a = SpireModel.train(
            SampleSet([sample("only_a", i, 1.0) for i in range(1, 8)])
        )
        b = SpireModel.train(
            SampleSet([sample("only_b", i, 1.0) for i in range(1, 8)])
        )
        with pytest.raises(EstimationError):
            compare_models(a, b)

    def test_apex_values_reported(self, rng):
        model = model_with_scale(1.0, rng)
        comparison = compare_models(model, model)[0]
        assert comparison.apex_a == comparison.apex_b > 0

    def test_render(self, rng):
        model = model_with_scale(1.0, rng)
        text = render_comparison(compare_models(model, model), "sky", "little")
        assert "little" in text
        assert "stalls" in text


class TestCrossMachineComparison:
    def test_little_core_is_more_sensitive(self, small_experiment):
        """The 2-wide in-order-ish core bounds lower than the Skylake
        analog on shared metrics — the paper's non-transfer motivation."""
        import random

        from repro.core.sample import SampleSet
        from repro.counters import CollectionConfig, SampleCollector
        from repro.uarch import CoreModel
        from repro.uarch.config import little_inorder_core
        from repro.workloads import training_suite

        machine = little_inorder_core()
        collector = SampleCollector(
            machine, config=CollectionConfig(windows_per_period=30)
        )
        core = CoreModel(machine)
        pooled = SampleSet()
        for index, workload in enumerate(training_suite()[:8]):
            pooled.extend(
                collector.collect(
                    core, workload.specs(150, 20_000), rng=random.Random(index)
                ).samples
            )
        little_model = SpireModel.train(pooled)
        comparisons = compare_models(small_experiment.model, little_model)
        # On average across metrics, the little core's bounds sit lower.
        mean_of_means = sum(c.mean_ratio for c in comparisons) / len(comparisons)
        assert mean_of_means < 1.0
