"""Property-based tests for the trace pipeline's physical invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import KERNELS, PipelineConfig, TracePipeline, make_kernel_trace
from repro.trace.uops import MicroOp


@st.composite
def random_traces(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=50, max_value=3_000))
    rng = random.Random(seed)
    kinds = ("alu", "mul", "div", "fp", "load", "store", "branch")
    trace = []
    for i in range(n):
        kind = rng.choice(kinds)
        if kind in ("load", "store"):
            uop = MicroOp(
                kind,
                dest=rng.randint(1, 16) if kind == "load" else None,
                sources=(rng.randint(1, 16),),
                address=rng.randrange(1 << 24),
                pc=(i % 512) * 4,
            )
        elif kind == "branch":
            uop = MicroOp(
                "branch", sources=(rng.randint(1, 16),),
                taken=rng.random() < 0.5, pc=(i % 512) * 4,
            )
        else:
            uop = MicroOp(
                kind, dest=rng.randint(1, 16),
                sources=(rng.randint(1, 16),), pc=(i % 512) * 4,
            )
        trace.append(uop)
    return trace


@settings(max_examples=30, deadline=None)
@given(random_traces())
def test_pipeline_invariants_on_arbitrary_traces(trace):
    pipeline = TracePipeline()
    counters = pipeline.execute(trace)

    assert counters.instructions == len(trace)
    assert counters.cycles >= len(trace) // PipelineConfig().width
    assert 0 < counters.ipc <= PipelineConfig().width

    # Event counts bounded by their populations.
    assert counters.branch_mispredicts <= counters.branches
    assert counters.l1_misses <= counters.loads
    assert counters.l2_misses <= counters.l1_misses
    assert counters.l3_misses <= counters.l2_misses
    assert counters.branches == sum(1 for u in trace if u.kind == "branch")
    assert counters.loads == sum(1 for u in trace if u.kind == "load")
    assert counters.divides == sum(1 for u in trace if u.kind == "div")

    # Stall accounting stays within physical limits.
    assert counters.rob_stall_cycles <= counters.cycles
    assert counters.redirect_stall_cycles <= counters.cycles
    assert counters.icache_stall_cycles <= counters.cycles
    assert all(v >= 0 for v in counters.as_dict().values())


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from(sorted(KERNELS)),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=1_000),
)
def test_kernels_always_executable(kernel, intensity, seed):
    trace = make_kernel_trace(kernel, 1_000, intensity, seed=seed)
    counters = TracePipeline().execute(trace)
    assert counters.instructions == 1_000
    assert 0 < counters.ipc <= 4.0


@settings(max_examples=20, deadline=None)
@given(random_traces())
def test_execution_split_is_deterministic(trace):
    a = TracePipeline().execute(trace)
    b = TracePipeline().execute(trace)
    assert a.as_dict() == b.as_dict()
