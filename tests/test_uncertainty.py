"""Unit tests for bootstrap uncertainty on bottleneck estimates."""

import random

import pytest

from repro.core.ensemble import SpireModel
from repro.core.sample import Sample, SampleSet
from repro.core.uncertainty import bootstrap_estimates
from repro.errors import EstimationError


def sample(metric, intensity, throughput, work=1000.0):
    return Sample(
        metric, time=work / throughput, work=work, metric_count=work / intensity
    )


@pytest.fixture
def model(two_metric_sampleset):
    return SpireModel.train(two_metric_sampleset)


@pytest.fixture
def workload(rng):
    return SampleSet(
        [sample("stalls", rng.uniform(2, 6), rng.uniform(0.8, 1.4)) for _ in range(30)]
        + [
            sample("dsb_uops", rng.uniform(40, 80), rng.uniform(0.8, 1.4))
            for _ in range(30)
        ]
    )


class TestBootstrap:
    def test_intervals_bracket_point_estimate(self, model, workload):
        result = bootstrap_estimates(model, workload, resamples=100)
        for interval in result.intervals:
            assert interval.lower <= interval.estimate + 1e-9
            assert interval.upper >= interval.estimate - 1e-9

    def test_point_estimates_match_model(self, model, workload):
        result = bootstrap_estimates(model, workload, resamples=50)
        reference = model.estimate(workload).per_metric
        for interval in result.intervals:
            assert interval.estimate == pytest.approx(reference[interval.metric])

    def test_first_rank_shares_sum_to_one(self, model, workload):
        result = bootstrap_estimates(model, workload, resamples=100)
        total = sum(i.first_rank_share for i in result.intervals)
        assert total == pytest.approx(1.0)

    def test_pool_contains_minimum(self, model, workload):
        result = bootstrap_estimates(model, workload, resamples=100)
        pool = result.pool()
        assert pool
        assert pool[0].metric == result.ranked()[0].metric

    def test_deterministic_with_seeded_rng(self, model, workload):
        a = bootstrap_estimates(model, workload, resamples=50, rng=random.Random(1))
        b = bootstrap_estimates(model, workload, resamples=50, rng=random.Random(1))
        for x, y in zip(a.intervals, b.intervals):
            assert x == y

    def test_more_samples_tighter_intervals(self, model, rng):
        def workload_of(n):
            return SampleSet(
                [
                    sample("stalls", rng.uniform(2, 20), rng.uniform(0.8, 1.4))
                    for _ in range(n)
                ]
            )

        small = bootstrap_estimates(model, workload_of(10), resamples=200)
        large = bootstrap_estimates(model, workload_of(400), resamples=200)
        width_small = small.intervals[0].upper - small.intervals[0].lower
        width_large = large.intervals[0].upper - large.intervals[0].lower
        assert width_large < width_small

    def test_render(self, model, workload):
        text = bootstrap_estimates(model, workload, resamples=20).render()
        assert "resamples" in text
        assert "stalls" in text or "dsb_uops" in text

    def test_for_metric_lookup(self, model, workload):
        result = bootstrap_estimates(model, workload, resamples=20)
        assert result.for_metric("stalls").metric == "stalls"
        with pytest.raises(EstimationError):
            result.for_metric("nope")

    def test_validation(self, model, workload):
        with pytest.raises(EstimationError):
            bootstrap_estimates(model, workload, resamples=1)
        with pytest.raises(EstimationError):
            bootstrap_estimates(model, workload, confidence=1.5)

    def test_no_overlap_rejected(self, model):
        other = SampleSet([sample("unknown", 2, 1.0)])
        with pytest.raises(EstimationError):
            bootstrap_estimates(model, other)
