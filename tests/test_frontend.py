"""Unit tests for the front-end supply model."""

import pytest

from repro.uarch.frontend import FrontendModel
from repro.uarch.spec import WindowSpec


@pytest.fixture
def frontend(machine):
    return FrontendModel(machine)


class TestSupplySplit:
    def test_uop_sources_sum_to_issued(self, frontend):
        spec = WindowSpec(dsb_coverage=0.6, microcode_fraction=0.1)
        result = frontend.evaluate(spec, uops_issued=10_000.0, instructions=9_000.0)
        assert result.dsb_uops + result.mite_uops + result.ms_uops == pytest.approx(
            10_000.0
        )

    def test_dsb_coverage_controls_split(self, frontend):
        spec = WindowSpec(dsb_coverage=0.9, microcode_fraction=0.0)
        result = frontend.evaluate(spec, 10_000.0, 9_000.0)
        assert result.dsb_uops == pytest.approx(9_000.0)
        assert result.mite_uops == pytest.approx(1_000.0)
        assert result.ms_uops == 0.0

    def test_ms_fraction(self, frontend):
        spec = WindowSpec(microcode_fraction=0.2, dsb_coverage=1.0)
        result = frontend.evaluate(spec, 10_000.0, 9_000.0)
        assert result.ms_uops == pytest.approx(2_000.0)

    def test_active_cycles_match_widths(self, frontend, machine):
        spec = WindowSpec(dsb_coverage=1.0, microcode_fraction=0.0)
        result = frontend.evaluate(spec, 6_000.0, 6_000.0)
        assert result.dsb_active_cycles == pytest.approx(6_000.0 / machine.dsb_width)


class TestCosts:
    def test_full_dsb_no_bandwidth_cost(self, frontend):
        # Full DSB coverage delivers 6 uops/cycle against a 4-wide demand:
        # supply never falls behind.
        spec = WindowSpec(dsb_coverage=1.0, microcode_fraction=0.0, fe_bubble_rate=0.0)
        result = frontend.evaluate(spec, 10_000.0, 9_000.0)
        assert result.bandwidth_cycles == 0.0
        assert result.total_cycles == 0.0

    def test_legacy_decode_costs_cycles(self, frontend):
        spec = WindowSpec(dsb_coverage=0.0, microcode_fraction=0.0, fe_bubble_rate=0.0)
        result = frontend.evaluate(spec, 10_000.0, 9_000.0)
        assert result.bandwidth_cycles > 0.0

    def test_lower_dsb_coverage_costs_more(self, frontend):
        costs = []
        for coverage in (0.9, 0.5, 0.1):
            spec = WindowSpec(dsb_coverage=coverage, fe_bubble_rate=0.0)
            costs.append(frontend.evaluate(spec, 10_000.0, 9_000.0).bandwidth_cycles)
        assert costs == sorted(costs)

    def test_latency_bubbles_scale_with_rate(self, frontend):
        low = frontend.evaluate(
            WindowSpec(fe_bubble_rate=0.001), 10_000.0, 9_000.0
        ).latency_cycles
        high = frontend.evaluate(
            WindowSpec(fe_bubble_rate=0.01), 10_000.0, 9_000.0
        ).latency_cycles
        assert high == pytest.approx(10 * low)

    def test_ms_switches_scale_with_ms_uops(self, frontend):
        little = frontend.evaluate(
            WindowSpec(microcode_fraction=0.01), 10_000.0, 9_000.0
        )
        lots = frontend.evaluate(
            WindowSpec(microcode_fraction=0.1), 10_000.0, 9_000.0
        )
        assert lots.ms_switches > little.ms_switches

    def test_wrong_path_uops_decode_too(self, frontend):
        # More issued uops (same retired instructions) -> more DSB uops:
        # the Figure 7 confounding path.
        spec = WindowSpec(dsb_coverage=0.8)
        a = frontend.evaluate(spec, 10_000.0, 9_000.0)
        b = frontend.evaluate(spec, 13_000.0, 9_000.0)
        assert b.dsb_uops > a.dsb_uops
