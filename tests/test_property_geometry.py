"""Property-based tests for the geometry kernels, cross-checked with scipy.

The gift-wrapped chain of :mod:`repro.geometry.hull` must coincide with
the relevant portion of scipy's convex hull, and the Pareto front must
satisfy its defining dominance properties on arbitrary inputs.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.spatial import ConvexHull, QhullError

from repro.geometry.hull import upper_concave_chain
from repro.geometry.pareto import is_pareto_optimal, pareto_front
from repro.geometry.piecewise import PiecewiseLinear

point_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.1, max_value=50.0),
    ),
    min_size=3,
    max_size=40,
)


def scipy_upper_chain(points):
    """The upper-left hull from the origin to the max-y point via scipy."""
    target = max(points, key=lambda p: (p[1], -p[0]))
    covered = [p for p in points if p[0] <= target[0]]
    array = np.array([(0.0, 0.0)] + covered, dtype=float)
    try:
        hull = ConvexHull(array)
    except QhullError:
        return None  # degenerate input (collinear); skip the cross-check
    vertices = [tuple(array[v]) for v in hull.vertices]
    # Keep the hull vertices between the origin and the target, walking
    # the upper side: x increasing, part of the chain from (0,0) to target.
    chain = sorted(
        {
            v
            for v in vertices
            if 0.0 <= v[0] <= target[0]
        }
    )
    return chain, target


@settings(max_examples=60, deadline=None)
@given(point_lists)
def test_chain_vertices_are_scipy_hull_vertices(points):
    reference = scipy_upper_chain(points)
    if reference is None:
        return
    hull_vertices, target = reference
    chain = upper_concave_chain(
        [p for p in points if p[0] <= target[0]], target=target
    )
    hull_set = {(round(x, 9), round(y, 9)) for x, y in hull_vertices}
    for x, y in chain:
        assert (round(x, 9), round(y, 9)) in hull_set


@settings(max_examples=60, deadline=None)
@given(point_lists)
def test_chain_is_tight(points):
    """No valid concave-down chain can sit strictly below ours anywhere
    while covering all points: our chain touches a point on every segment."""
    target = max(points, key=lambda p: (p[1], -p[0]))
    covered = [p for p in points if p[0] <= target[0]]
    chain = upper_concave_chain(covered, target=target)
    touchable = set(covered) | {(0.0, 0.0), target}
    for vertex in chain:
        assert vertex in touchable


@settings(max_examples=60, deadline=None)
@given(point_lists)
def test_chain_upper_bound_and_concave(points):
    target = max(points, key=lambda p: (p[1], -p[0]))
    covered = [p for p in points if p[0] <= target[0]]
    chain = upper_concave_chain(covered, target=target)
    assert PiecewiseLinear(chain).is_upper_bound_of(covered)
    slopes = [
        (y1 - y0) / (x1 - x0)
        for (x0, y0), (x1, y1) in zip(chain, chain[1:])
        if x1 > x0
    ]
    assert all(b <= a + 1e-9 for a, b in zip(slopes, slopes[1:]))


@settings(max_examples=80, deadline=None)
@given(point_lists)
def test_pareto_front_properties(points):
    front = pareto_front(points)
    point_set = set((float(x), float(y)) for x, y in points)
    # Every front member is an input point and is non-dominated.
    for p in front:
        assert p in point_set
        assert is_pareto_optimal(p, points)
    # Every non-front point is dominated by some front point.
    front_set = set(front)
    for p in point_set - front_set:
        assert any(
            q[0] >= p[0] and q[1] >= p[1] and q != p for q in front
        )
    # Sorted by decreasing x, strictly increasing y.
    xs = [x for x, _ in front]
    ys = [y for _, y in front]
    assert xs == sorted(xs, reverse=True)
    assert all(b > a for a, b in zip(ys, ys[1:]))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_dijkstra_agrees_with_networkx_on_random_graphs(seed):
    import networkx as nx

    from repro.geometry.shortest_path import Graph, dijkstra

    rng = random.Random(seed)
    n = rng.randint(2, 25)
    graph = Graph()
    reference = nx.DiGraph()
    for node in range(n):
        graph.add_node(node)
        reference.add_node(node)
    for _ in range(rng.randint(1, 80)):
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        weight = rng.uniform(0, 5)
        graph.add_edge(a, b, weight)
        if not reference.has_edge(a, b) or reference[a][b]["weight"] > weight:
            reference.add_edge(a, b, weight=weight)
    source, target = rng.randrange(n), rng.randrange(n)
    try:
        expected = nx.dijkstra_path_length(reference, source, target)
    except nx.NetworkXNoPath:
        with pytest.raises(ValueError):
            dijkstra(graph, source, target)
        return
    distance, path = dijkstra(graph, source, target)
    assert distance == pytest.approx(expected)
    assert path[0] == source and path[-1] == target
