"""Unit tests for the Top-Down analysis baseline."""

import random

import pytest

from repro.counters import CollectionConfig, SampleCollector
from repro.errors import DataError
from repro.tma import TMA_TREE, TopDownAnalyzer
from repro.tma.hierarchy import TABLE1_CATEGORIES
from repro.uarch.spec import WindowSpec


def counts_for(machine, core, spec, windows=20, seed=0):
    collector = SampleCollector(
        machine, config=CollectionConfig(multiplex=False, windows_per_period=5)
    )
    result = collector.collect(core, [spec] * windows, rng=random.Random(seed))
    return result.full_counts


class TestHierarchy:
    def test_level1_nodes_present(self):
        for name in ("retiring", "front_end_bound", "bad_speculation",
                     "back_end_bound"):
            assert TMA_TREE.find(name) is not None

    def test_level2_backend_split(self):
        backend = TMA_TREE.find("back_end_bound")
        names = [child.name for child in backend.children]
        assert names == ["memory_bound", "core_bound"]

    def test_find_missing(self):
        assert TMA_TREE.find("quantum_bound") is None

    def test_walk_and_paths(self):
        names = [n.name for n in TMA_TREE.walk()]
        assert "dram_bound" in names
        paths = TMA_TREE.paths()
        assert ("total", "back_end_bound", "memory_bound", "dram_bound") in paths

    def test_table1_categories(self):
        assert TABLE1_CATEGORIES == (
            "Front-End", "Bad Speculation", "Memory", "Core",
        )


class TestAnalyzer:
    def test_missing_event_rejected(self, machine):
        with pytest.raises(DataError, match="requires event"):
            TopDownAnalyzer(machine).analyze({"cpu_clk_unhalted.thread": 1.0})

    def test_zero_cycles_rejected(self, machine, core):
        counts = counts_for(machine, core, WindowSpec())
        counts["cpu_clk_unhalted.thread"] = 0.0
        with pytest.raises(DataError):
            TopDownAnalyzer(machine).analyze(counts)

    def test_level1_sums_to_one(self, machine, core):
        counts = counts_for(machine, core, WindowSpec())
        result = TopDownAnalyzer(machine).analyze(counts)
        assert sum(result.level1().values()) == pytest.approx(1.0, abs=1e-6)

    def test_fractions_in_unit_interval(self, machine, core):
        counts = counts_for(
            machine, core, WindowSpec(branch_mispredict_rate=0.05, frac_branches=0.2)
        )
        result = TopDownAnalyzer(machine).analyze(counts)
        for name, value in result.fractions.items():
            assert -1e-9 <= value <= 1.0 + 1e-9, name

    def test_children_sum_to_parent(self, machine, core):
        counts = counts_for(
            machine,
            core,
            WindowSpec(
                frac_loads=0.3, l1_miss_per_load=0.05, frac_divides=0.005,
                lock_load_fraction=0.002,
            ),
        )
        result = TopDownAnalyzer(machine).analyze(counts)
        f = result.fractions
        assert f["memory_bound"] + f["core_bound"] == pytest.approx(
            f["back_end_bound"], abs=1e-9
        )
        assert f["fetch_latency"] + f["fetch_bandwidth"] == pytest.approx(
            f["front_end_bound"], abs=1e-9
        )
        assert f["branch_mispredicts"] + f["machine_clears"] == pytest.approx(
            f["bad_speculation"], abs=1e-9
        )
        mem_children = (
            f["l2_bound"] + f["l3_bound"] + f["dram_bound"] + f["lock_latency"]
        )
        assert mem_children == pytest.approx(f["memory_bound"], abs=1e-9)
        core_children = f["divider"] + f["ports_utilization"] + f["vector_width"]
        assert core_children == pytest.approx(f["core_bound"], abs=1e-9)

    def test_unknown_category_lookup(self, machine, core):
        counts = counts_for(machine, core, WindowSpec())
        result = TopDownAnalyzer(machine).analyze(counts)
        with pytest.raises(DataError):
            result.fraction("mystery_bound")

    def test_render_tree(self, machine, core):
        counts = counts_for(machine, core, WindowSpec())
        text = TopDownAnalyzer(machine).analyze(counts).render()
        assert "retiring" in text
        assert "memory_bound" in text
        assert "%" in text


class TestClassification:
    @pytest.mark.parametrize(
        "spec_kwargs,expected",
        [
            (dict(branch_mispredict_rate=0.12, frac_branches=0.25, ilp=4.0),
             "Bad Speculation"),
            (dict(l1_miss_per_load=0.15, frac_loads=0.4, l2_miss_fraction=0.8,
                  l3_miss_fraction=0.8, mlp=2.0), "Memory"),
            (dict(ilp=1.0, frac_divides=0.01), "Core"),
            (dict(dsb_coverage=0.0, fe_bubble_rate=0.03, ilp=4.0,
                  uops_per_instruction=1.4), "Front-End"),
        ],
    )
    def test_injected_bottleneck_recovered(self, machine, core, spec_kwargs, expected):
        counts = counts_for(machine, core, WindowSpec(**spec_kwargs))
        result = TopDownAnalyzer(machine).analyze(counts)
        assert result.main_bottleneck() == expected

    def test_dominant_category_allows_retiring(self, machine, core):
        counts = counts_for(
            machine,
            core,
            WindowSpec(
                ilp=8.0, dsb_coverage=1.0, branch_mispredict_rate=0.0,
                l1_miss_per_load=0.0, fe_bubble_rate=0.0,
                uops_per_instruction=1.0,
            ),
        )
        result = TopDownAnalyzer(machine).analyze(counts)
        assert result.dominant_category() == "Retiring"
        assert result.fraction("retiring") > 0.9

    def test_ipc_reported(self, machine, core):
        counts = counts_for(machine, core, WindowSpec())
        result = TopDownAnalyzer(machine).analyze(counts)
        assert result.ipc == pytest.approx(
            counts["inst_retired.any"] / counts["cpu_clk_unhalted.thread"]
        )
