"""Unit tests for the WindowActivity record."""

import pytest

from repro.uarch.activity import WindowActivity


class TestProperties:
    def test_ipc(self):
        a = WindowActivity(instructions=100.0, cycles=50.0)
        assert a.ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert WindowActivity().ipc == 0.0

    def test_miss_aggregates(self):
        a = WindowActivity(l2_served=10.0, l3_served=5.0, dram_served=2.0)
        assert a.l1_misses == 17.0
        assert a.l2_misses == 7.0
        assert a.l3_misses == 2.0

    def test_backend_stall_cycles(self):
        a = WindowActivity(c_mem=3.0, c_core=4.0)
        assert a.backend_stall_cycles == 7.0


class TestMerge:
    def test_fields_sum(self):
        a = WindowActivity(instructions=10.0, cycles=20.0, loads=5.0)
        b = WindowActivity(instructions=1.0, cycles=2.0, loads=0.5)
        merged = a.merged_with(b)
        assert merged.instructions == 11.0
        assert merged.cycles == 22.0
        assert merged.loads == 5.5

    def test_port_uops_merge_union(self):
        a = WindowActivity(port_uops={"p0": 1.0, "p1": 2.0})
        b = WindowActivity(port_uops={"p1": 3.0, "p2": 4.0})
        merged = a.merged_with(b)
        assert merged.port_uops == {"p0": 1.0, "p1": 5.0, "p2": 4.0}

    def test_merge_does_not_mutate(self):
        a = WindowActivity(port_uops={"p0": 1.0})
        b = WindowActivity(port_uops={"p0": 2.0})
        a.merged_with(b)
        assert a.port_uops == {"p0": 1.0}


class TestConsistency:
    def test_consistent_record_passes(self):
        a = WindowActivity(
            cycles=10.0,
            c_base=4.0,
            c_fe=2.0,
            c_bad=1.0,
            c_mem=2.0,
            c_core=1.0,
            c_fe_latency=1.5,
            c_fe_bandwidth=0.5,
            c_mem_cache=1.0,
            c_mem_lock=1.0,
            c_core_div=0.5,
            c_core_ports=0.5,
            uops_issued=40.0,
            uops_retired=36.0,
        )
        a.check_consistency()

    def test_bad_cycle_sum_fails(self):
        a = WindowActivity(cycles=100.0, c_base=1.0)
        with pytest.raises(AssertionError, match="do not sum"):
            a.check_consistency()

    def test_retired_above_issued_fails(self):
        a = WindowActivity(
            cycles=1.0, c_base=1.0, uops_issued=10.0, uops_retired=20.0
        )
        with pytest.raises(AssertionError, match="retired"):
            a.check_consistency()
