"""Streaming ingestion: chunked perf parsing, screening, faults, CLI.

Covers the front door of :mod:`repro.stream.ingest` — records, sample
sets and raw ``perf stat -x,`` chunks split anywhere — plus the new
stream fault kinds in :mod:`repro.runtime.faults` and the ``spire
stream`` / ``spire faultsim --drift`` entry points.
"""

import warnings

import pytest

from repro.cli import main
from repro.errors import ConfigError, DegradedDataWarning
from repro.guard.dispatch import reset_guards
from repro.runtime.faults import (
    DRIFT_INJECT,
    STALE_WINDOW,
    STREAM_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.stream import StreamIngestor, StreamOptions, windows_from_records

PERF_TEXT = """\
# synthetic perf stat -I output
1.000234,1000000,,instructions,1999881203,100.00,,
1.000234,1450034,,cycles,1999881203,100.00,,
1.000234,8123,,br_misp_retired.all_branches,499970301,25.00,,
2.000456,2000000,,instructions,1999881203,100.00,,
2.000456,2250034,,cycles,1999881203,100.00,,
2.000456,<not counted>,,br_misp_retired.all_branches,0,0.00,,
2.000456,1995,,longest_lat_cache.miss,499970301,25.00,,
3.000789,1500000,,instructions,1999881203,100.00,,
3.000789,1750034,,cycles,1999881203,100.00,,
3.000789,4321,,longest_lat_cache.miss,499970301,25.00,,
"""


def _record(metric="m", time=1.0, work=4.0, count=2.0, timestamp=None):
    row = {"metric": metric, "time": time, "work": work, "metric_count": count}
    if timestamp is not None:
        row["timestamp"] = timestamp
    return row


@pytest.fixture(autouse=True)
def _fresh_guards():
    reset_guards()
    yield
    reset_guards()


class TestPerfChunking:
    def _drain(self, chunk_size):
        ingestor = StreamIngestor(options=StreamOptions(window_samples=1000))
        for start in range(0, len(PERF_TEXT), chunk_size):
            ingestor.push_perf(PERF_TEXT[start:start + chunk_size])
        ingestor.flush()
        return ingestor

    @pytest.mark.parametrize("chunk_size", [1, 7, 64, len(PERF_TEXT)])
    def test_any_chunking_yields_the_same_samples(self, chunk_size):
        """Mid-line, mid-interval splits change nothing."""
        whole = self._drain(len(PERF_TEXT))
        chunked = self._drain(chunk_size)
        assert chunked.pending_samples == whole.pending_samples
        assert chunked.pending_samples > 0

    def test_newline_free_chunks_buffer_without_parsing(self):
        """A line only parses once its newline arrives — no per-chunk
        re-scan of the buffered prefix, no spurious salvage entries."""
        ingestor = StreamIngestor(options=StreamOptions(window_samples=1000))
        for char in PERF_TEXT.replace("\n", "|"):
            # Feed character-wise with no newline ever arriving: nothing
            # may parse, nothing may be salvaged as malformed.
            ingestor.push_perf(char if char != "|" else "")
            assert ingestor.report().quality.total == 0
        assert ingestor.pending_samples == 0
        whole = self._drain(len(PERF_TEXT))
        chunked = self._drain(1)
        assert chunked.pending_samples == whole.pending_samples

    def test_open_interval_waits_for_newer_timestamp(self):
        ingestor = StreamIngestor(options=StreamOptions(window_samples=1000))
        lines = PERF_TEXT.splitlines(keepends=True)
        ingestor.push_perf("".join(lines[:4]))  # all of interval 1, no newer
        first = ingestor.pending_samples
        ingestor.push_perf("".join(lines[4:]))
        ingestor.flush()
        assert ingestor.pending_samples > first

    def test_salvage_feeds_the_quality_report(self):
        ingestor = StreamIngestor(options=StreamOptions(window_samples=1000))
        ingestor.push_perf(PERF_TEXT)
        ingestor.push_perf("garbage-without-fields\n")
        ingestor.flush()
        report = ingestor.report()
        reasons = [q.reason for q in report.quality.quarantined]
        assert "counter not counted" in reasons
        assert "truncated perf record" in reasons
        assert report.quality.kept > 0


class TestScreening:
    def test_out_of_order_timestamps_quarantined(self):
        ingestor = StreamIngestor(options=StreamOptions(window_samples=1000))
        ingestor.push_records([_record(timestamp=2.0)])
        with pytest.warns(DegradedDataWarning, match="out-of-order"):
            ingestor.push_records([_record(timestamp=1.0)])
        report = ingestor.report()
        assert [q.reason for q in report.quality.quarantined] == [
            "out-of-order timestamp"
        ]
        assert ingestor.pending_samples == 1

    def test_value_sanitizer_still_applies(self):
        ingestor = StreamIngestor(options=StreamOptions(window_samples=1000))
        with pytest.warns(DegradedDataWarning):
            ingestor.push_records(
                [_record(), _record(time=-1.0), _record(work=float("nan"))]
            )
        report = ingestor.report()
        assert report.quality.kept == 1
        assert len(report.quality.quarantined) == 2

    def test_window_auto_seals_at_size(self):
        ingestor = StreamIngestor(options=StreamOptions(window_samples=3))
        ingestor.push_records([_record(work=float(i + 1)) for i in range(7)])
        assert ingestor.window_count == 2
        assert ingestor.pending_samples == 1

    def test_no_model_skips_drift_checks_during_warmup(self):
        options = StreamOptions(window_samples=4, warmup_windows=2)
        ingestor = StreamIngestor(options=options)
        # Warmup windows: wildly inconsistent data, yet no drift events.
        ingestor.push_records(
            [_record(work=float(i + 1), count=1.0) for i in range(8)]
        )
        assert ingestor.window_count == 2
        assert ingestor.events == []
        # Past warmup the same metric is now checked against its own fit.
        ingestor.push_records(
            [_record(work=100.0 * (i + 1), count=1.0) for i in range(4)]
        )
        assert ingestor.window_count == 3
        assert ingestor.events != []


class TestWindowsFromRecords:
    def test_slices_consecutively(self):
        windows = windows_from_records([_record(work=float(i)) for i in range(5)], 2)
        assert [len(w) for w in windows] == [2, 2, 1]
        assert windows[0][0]["work"] == 0.0

    def test_rejects_bad_window_size(self):
        with pytest.raises(ValueError):
            windows_from_records([], 0)


class TestStreamFaultKinds:
    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            FaultSpec(workload="w", kind=DRIFT_INJECT, factor=0.0)
        with pytest.raises(ConfigError):
            FaultSpec(workload="w", kind=STALE_WINDOW, window=-1)

    def test_stream_faults_accessor_excludes_runner_kinds(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(workload="w", kind="crash"),
                FaultSpec(workload="m", kind=DRIFT_INJECT),
                FaultSpec(workload="*", kind=STALE_WINDOW),
            )
        )
        assert [s.kind for s in plan.stream_faults()] == list(STREAM_KINDS)
        assert "w" in plan.injected_workloads()
        assert "m" not in plan.injected_workloads()

    def test_random_plan_backward_compatible(self):
        """Adding stream draws must not disturb pre-existing plans."""
        names = ["a", "b", "c"]
        before = FaultPlan.random(names, seed=9, crashes=2, hangs=1)
        after = FaultPlan.random(
            names, seed=9, crashes=2, hangs=1, drift_injects=2, stale_windows=1
        )
        assert after.specs[: len(before.specs)] == before.specs
        extra = after.specs[len(before.specs):]
        assert [s.kind for s in extra] == [
            DRIFT_INJECT, DRIFT_INJECT, STALE_WINDOW,
        ]
        for spec in extra:
            assert spec.factor > 0
            assert spec.window >= 0


@pytest.fixture
def stream_csv(tmp_path):
    path = tmp_path / "stream.csv"
    assert (
        main(
            [
                "simulate",
                "tnn",
                "--out",
                str(path),
                "--windows",
                "60",
                "--no-multiplex",
            ]
        )
        == 0
    )
    return path


class TestStreamCLI:
    def test_stream_csv_without_model(self, stream_csv, capsys):
        assert main(["stream", "--data", str(stream_csv), "--window", "64"]) == 0
        out = capsys.readouterr().out
        assert "stream:" in out
        assert "serving" in out

    def test_stream_csv_with_model(self, stream_csv, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        assert (
            main(["train", str(stream_csv), "--model", str(model_path)]) == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "stream",
                    "--data",
                    str(stream_csv),
                    "--model",
                    str(model_path),
                    "--window",
                    "128",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stream:" in out

    def test_stream_perf_format(self, tmp_path, capsys):
        log = tmp_path / "perf.log"
        log.write_text(PERF_TEXT)
        assert (
            main(
                [
                    "stream",
                    "--data",
                    str(log),
                    "--format",
                    "perf",
                    "--window",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stream:" in out

    def test_stream_missing_file_fails_cleanly(self, capsys):
        assert main(["stream", "--data", "/nonexistent/x.csv"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_faultsim_drift_scenario_passes(self, capsys):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert main(["faultsim", "--drift"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "refit" in out
        assert "bit-identical" in out
