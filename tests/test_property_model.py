"""Property-based tests over the simulator substrate.

For any valid window spec, the core model must produce physically sensible
activity (non-negative counters, IPC bounded by the pipeline width, cycle
attribution summing to total cycles), and every catalog event must compute
a non-negative count.  These are the invariants the SPIRE pipeline relies
on when it treats the simulator as a stand-in for real hardware.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counters.events import default_catalog
from repro.uarch import CoreModel, skylake_gold_6126
from repro.uarch.config import little_inorder_core
from repro.workloads.generator import random_spec

_MACHINES = [skylake_gold_6126(), little_inorder_core()]


@st.composite
def window_specs(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_spec(random.Random(seed))


@settings(max_examples=80, deadline=None)
@given(window_specs(), st.sampled_from([0, 1]))
def test_activity_physically_sensible(spec, machine_index):
    machine = _MACHINES[machine_index]
    core = CoreModel(machine)
    activity = core.simulate_window(spec)
    assert activity.cycles > 0
    assert 0 < activity.ipc <= machine.pipeline_width
    activity.check_consistency()
    assert activity.uops_retired <= activity.uops_executed + 1e-9
    assert activity.uops_executed <= activity.uops_issued + 1e-9
    assert activity.l1_misses <= activity.loads + 1e-9
    assert activity.mispredicted_branches <= activity.branches + 1e-9


@settings(max_examples=60, deadline=None)
@given(window_specs())
def test_all_events_non_negative(spec):
    machine = _MACHINES[0]
    core = CoreModel(machine)
    activity = core.simulate_window(spec)
    counts = default_catalog().compute_all(activity, machine)
    for name, value in counts.items():
        assert value >= 0.0, name


@settings(max_examples=40, deadline=None)
@given(window_specs(), st.integers(min_value=0, max_value=1_000))
def test_jittered_windows_stay_sensible(spec, seed):
    machine = _MACHINES[0]
    core = CoreModel(machine)
    activity = core.simulate_window(spec, random.Random(seed))
    assert activity.cycles > 0
    assert 0 < activity.ipc <= machine.pipeline_width
    activity.check_consistency()


@settings(max_examples=30, deadline=None)
@given(window_specs())
def test_tma_fractions_valid_for_any_spec(spec):
    from repro.tma import TopDownAnalyzer

    machine = _MACHINES[0]
    core = CoreModel(machine)
    activity = core.simulate_window(spec)
    counts = default_catalog().compute_all(activity, machine)
    result = TopDownAnalyzer(machine).analyze(counts)
    level1 = result.level1()
    assert abs(sum(level1.values()) - 1.0) < 1e-6
    for value in result.fractions.values():
        assert -1e-9 <= value <= 1.0 + 1e-9
