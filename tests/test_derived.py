"""Unit tests for derived counter metrics."""

import math
import random

import pytest

from repro.counters import CollectionConfig, SampleCollector
from repro.counters.derived import DERIVED_METRICS, derive_all, render_derived
from repro.errors import DataError
from repro.uarch import CoreModel
from repro.uarch.spec import WindowSpec


@pytest.fixture
def full_counts(machine, core):
    collector = SampleCollector(
        machine, config=CollectionConfig(multiplex=False, windows_per_period=5)
    )
    spec = WindowSpec(
        frac_loads=0.3,
        frac_branches=0.2,
        branch_mispredict_rate=0.02,
        l1_miss_per_load=0.05,
        dsb_coverage=0.8,
        microcode_fraction=0.02,
    )
    return collector.collect(core, [spec] * 10, rng=random.Random(0)).full_counts


class TestDeriveAll:
    def test_all_standard_metrics_computable(self, full_counts):
        values = derive_all(full_counts)
        assert set(values) == {m.name for m in DERIVED_METRICS}

    def test_ipc_matches_counters(self, full_counts):
        values = derive_all(full_counts)
        assert values["ipc"] == pytest.approx(
            full_counts["inst_retired.any"]
            / full_counts["cpu_clk_unhalted.thread"]
        )

    def test_rates_in_sane_ranges(self, full_counts):
        values = derive_all(full_counts)
        assert 0 < values["ipc"] <= 4.0
        assert values["uops_per_instruction"] >= 1.0
        assert 0 <= values["branch_mispredict_rate"] <= 1.0
        assert 0 <= values["l1_miss_ratio"] <= 1.0
        assert 0 <= values["dsb_coverage"] <= 1.0
        assert 0 <= values["memory_stall_share"] <= 1.0
        assert values["branch_mpki"] > 0

    def test_dsb_coverage_tracks_spec(self, machine, core):
        collector = SampleCollector(
            machine,
            config=CollectionConfig(multiplex=False, windows_per_period=5),
        )
        low = collector.collect(
            core, [WindowSpec(dsb_coverage=0.1)] * 5
        ).full_counts
        high = collector.collect(
            core, [WindowSpec(dsb_coverage=0.95)] * 5
        ).full_counts
        assert derive_all(low)["dsb_coverage"] < derive_all(high)["dsb_coverage"]

    def test_missing_events_skipped(self, full_counts):
        partial = {
            "inst_retired.any": full_counts["inst_retired.any"],
            "cpu_clk_unhalted.thread": full_counts["cpu_clk_unhalted.thread"],
        }
        values = derive_all(partial)
        assert set(values) == {"ipc"}

    def test_nothing_computable_rejected(self):
        with pytest.raises(DataError):
            derive_all({"weird.event": 1.0})

    def test_zero_denominator_nan(self):
        values = derive_all(
            {
                "inst_retired.any": 0.0,
                "cpu_clk_unhalted.thread": 100.0,
                "br_misp_retired.all_branches": 0.0,
                "br_inst_retired.all_branches": 0.0,
            }
        )
        assert values["ipc"] == 0.0
        assert math.isnan(values["branch_mispredict_rate"])

    def test_render(self, full_counts):
        text = render_derived(full_counts)
        assert "ipc" in text
        assert "dsb_coverage" in text
        assert "per kilo-instruction" in text
