"""Incremental-vs-batch parity for the streaming ensemble.

The headline promise of :mod:`repro.stream.incremental` is *bit*
equivalence: an :class:`OnlineSpire` that saw the samples one at a time
— with refreshes interleaved anywhere — serves exactly the roofline a
batch :func:`fit_metric_roofline_arrays` over the same arrays produces,
field for field including retained training points.  Hypothesis drives
arbitrary insertion orders, apex moves, ties, infinite intensities and
refresh schedules against that oracle; the guard tests prove the
``"stream.update"`` kernel sentinel actually referees the same check at
runtime and degrades to the batch path on divergence.
"""

import math

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ensemble import TrainOptions
from repro.core.roofline import RooflineFitOptions, fit_metric_roofline_arrays
from repro.errors import DataError, FitError
from repro.geometry.pareto import pareto_front_arrays
from repro.guard.dispatch import (
    GuardConfig,
    inject_divergence,
    registry,
    reset_guards,
)
from repro.stream.incremental import MetricStreamState, OnlineSpire

# A small value grid encourages ties, duplicates and apex churn far more
# often than uniform floats would.
_VALUES = st.one_of(
    st.sampled_from([1.0, 2.0, 4.0, 8.0, 100.0]),
    st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False),
)


@st.composite
def raw_sample(draw):
    time = draw(_VALUES)
    work = draw(_VALUES)
    count = draw(st.one_of(st.just(0.0), _VALUES))
    return (time, work, count)


@st.composite
def stream_case(draw):
    samples = draw(st.lists(raw_sample(), min_size=1, max_size=50))
    # Refresh after each of these (0-based) insert positions.
    refreshes = draw(
        st.sets(st.integers(min_value=0, max_value=len(samples) - 1))
    )
    return samples, refreshes


def _batch_fit(samples, options):
    xs = np.asarray(
        [math.inf if c == 0 else w / c for (_, w, c) in samples],
        dtype=np.float64,
    )
    ys = np.asarray([w / t for (t, w, _) in samples], dtype=np.float64)
    return fit_metric_roofline_arrays("m", xs, ys, options=options.roofline)


def _run_stream(samples, refreshes, options):
    online = OnlineSpire(options=options)
    for i, (time, work, count) in enumerate(samples):
        online.insert("m", time=time, work=work, metric_count=count)
        if i in refreshes:
            online.refresh()
    online.refresh()
    return online


@pytest.fixture(autouse=True)
def _unguarded():
    """Parity tests measure the incremental path itself, not the guard."""
    reset_guards(GuardConfig(check_rate=0))
    yield
    reset_guards()


class TestBatchParity:
    @settings(max_examples=80, deadline=None)
    @given(stream_case())
    def test_incremental_equals_batch(self, case):
        samples, refreshes = case
        options = TrainOptions(min_samples_per_metric=1)
        online = _run_stream(samples, refreshes, options)
        got = online.roofline("m")
        expected = _batch_fit(samples, options)
        assert got.direction == expected.direction
        assert got.to_dict(include_training=True) == expected.to_dict(
            include_training=True
        )

    @settings(max_examples=40, deadline=None)
    @given(stream_case())
    def test_incremental_equals_batch_trend_mode(self, case):
        samples, refreshes = case
        options = TrainOptions(
            roofline=RooflineFitOptions(direction_mode="trend"),
            min_samples_per_metric=1,
        )
        online = _run_stream(samples, refreshes, options)
        got = online.roofline("m")
        expected = _batch_fit(samples, options)
        assert got.to_dict(include_training=True) == expected.to_dict(
            include_training=True
        )

    @settings(max_examples=40, deadline=None)
    @given(st.lists(raw_sample(), min_size=1, max_size=40))
    def test_front_matches_batch_pareto(self, samples):
        """The maintained front is the Pareto front of the finite points."""
        state = MetricStreamState("m")
        for time, work, count in samples:
            intensity = math.inf if count == 0 else work / count
            state.insert(intensity, work / time)
        if not state.fin_x:
            assert state.front_x == []
            return
        fx, fy = pareto_front_arrays(
            np.asarray(state.fin_x), np.asarray(state.fin_y)
        )
        assert set(zip(state.front_x, state.front_y)) == set(
            zip(fx.tolist(), fy.tolist())
        )

    def test_apex_tie_prefers_smaller_intensity(self):
        options = TrainOptions(min_samples_per_metric=1)
        samples = [(1.0, 8.0, 2.0), (1.0, 8.0, 1.0), (1.0, 8.0, 4.0)]
        online = _run_stream(samples, set(), options)
        expected = _batch_fit(samples, options)
        assert online.roofline("m").apex == expected.apex
        assert online.roofline("m").apex.x == 2.0

    def test_all_infinite_intensities(self):
        options = TrainOptions(min_samples_per_metric=1)
        samples = [(1.0, 3.0, 0.0), (1.0, 7.0, 0.0)]
        online = _run_stream(samples, {0}, options)
        expected = _batch_fit(samples, options)
        assert online.roofline("m").to_dict(
            include_training=True
        ) == expected.to_dict(include_training=True)

    def test_candidate_pruning_shrinks_state(self):
        """Points strictly under the fitted chain are dropped for good."""
        online = OnlineSpire(options=TrainOptions(min_samples_per_metric=1))
        online.insert("m", time=1.0, work=100.0, metric_count=1.0)  # apex
        online.insert("m", time=1.0, work=50.0, metric_count=1.0)
        online.refresh()
        state = online.state("m")
        kept = len(state.cand_x)
        for work in (1.0, 2.0, 3.0):  # far below the chain near x ~ 1-3
            online.insert("m", time=100.0, work=work, metric_count=work)
        online.refresh()
        assert len(state.cand_x) <= kept + 1
        samples = [(1.0, 100.0, 1.0), (1.0, 50.0, 1.0),
                   (100.0, 1.0, 1.0), (100.0, 2.0, 2.0), (100.0, 3.0, 3.0)]
        expected = _batch_fit(samples, TrainOptions(min_samples_per_metric=1))
        assert online.roofline("m").to_dict(
            include_training=True
        ) == expected.to_dict(include_training=True)


class TestValidation:
    def test_rejects_empty_metric(self):
        with pytest.raises(DataError):
            OnlineSpire().insert("", time=1.0, work=1.0, metric_count=1.0)

    @pytest.mark.parametrize("time", [0.0, -1.0, math.inf, math.nan])
    def test_rejects_bad_time(self, time):
        with pytest.raises(DataError):
            OnlineSpire().insert("m", time=time, work=1.0, metric_count=1.0)

    @pytest.mark.parametrize("work", [-1.0, math.inf, math.nan])
    def test_rejects_bad_work(self, work):
        with pytest.raises(DataError):
            OnlineSpire().insert("m", time=1.0, work=work, metric_count=1.0)

    @pytest.mark.parametrize("count", [-1.0, math.inf, math.nan])
    def test_rejects_bad_count(self, count):
        with pytest.raises(DataError):
            OnlineSpire().insert("m", time=1.0, work=1.0, metric_count=count)

    def test_starved_metric_withheld(self):
        online = OnlineSpire(options=TrainOptions(min_samples_per_metric=2))
        online.insert("m", time=1.0, work=4.0, metric_count=2.0)
        online.refresh()
        assert online.roofline("m") is None
        with pytest.raises(FitError):
            online.model()
        online.insert("m", time=1.0, work=8.0, metric_count=2.0)
        assert "m" in online.model().metrics

    def test_reset_metric_forgets_state(self):
        online = OnlineSpire(options=TrainOptions(min_samples_per_metric=1))
        online.insert("m", time=1.0, work=4.0, metric_count=2.0)
        online.refresh()
        online.reset_metric("m")
        assert online.state("m") is None
        assert online.roofline("m") is None
        assert online.metrics == []


class TestStreamUpdateGuard:
    def setup_method(self):
        reset_guards(GuardConfig(check_rate=1))

    def teardown_method(self):
        reset_guards()

    def _feed(self, online, n=12):
        for i in range(1, n + 1):
            online.insert("m", time=1.0, work=float(i), metric_count=1.0)
            online.refresh()

    def test_every_refit_is_oracle_checked_at_rate_one(self):
        online = OnlineSpire(options=TrainOptions(min_samples_per_metric=1))
        self._feed(online)
        report = registry().health_report()
        health = report.kernels["stream.update"]
        assert health.checks == 12
        assert not health.tripped
        assert not report.divergences

    def test_injected_divergence_degrades_to_batch(self):
        from repro.errors import DegradedDataWarning

        online = OnlineSpire(options=TrainOptions(min_samples_per_metric=1))
        inject_divergence("stream.update")
        with pytest.warns(DegradedDataWarning, match="stream.update"):
            self._feed(online)
        report = registry().health_report()
        assert report.kernels["stream.update"].tripped
        assert [d.kernel for d in report.divergences] == ["stream.update"]
        assert not report.ok
        # Degraded, not broken: the served fit still matches the oracle.
        samples = [(1.0, float(i), 1.0) for i in range(1, 13)]
        expected = _batch_fit(samples, TrainOptions(min_samples_per_metric=1))
        assert online.roofline("m").to_dict(
            include_training=True
        ) == expected.to_dict(include_training=True)
