"""Unit tests for the HTML report renderer."""

import random

import pytest

from repro.core.ensemble import SpireModel
from repro.core.sample import Sample, SampleSet
from repro.core.uncertainty import bootstrap_estimates
from repro.counters.events import default_catalog
from repro.viz.report import render_html_report, save_html_report


def sample(metric, intensity, throughput, work=1000.0):
    return Sample(
        metric, time=work / throughput, work=work, metric_count=work / intensity
    )


@pytest.fixture
def model(two_metric_sampleset):
    return SpireModel.train(two_metric_sampleset)


@pytest.fixture
def report(model):
    workload = SampleSet(
        [sample("stalls", 3.0, 1.0), sample("dsb_uops", 10.0, 1.0)]
    )
    return model.analyze(
        workload,
        workload="unit <test>",
        metric_areas={"stalls": "Core", "dsb_uops": "Front-End"},
    )


class TestRenderHtml:
    def test_document_structure(self, report):
        doc = render_html_report(report)
        assert doc.startswith("<!DOCTYPE html>")
        assert doc.endswith("</html>")
        assert "stalls" in doc

    def test_title_escaped(self, report):
        doc = render_html_report(report)
        assert "unit &lt;test&gt;" in doc
        assert "unit <test>" not in doc

    def test_areas_tagged(self, report):
        doc = render_html_report(report)
        assert "Front-End" in doc
        assert "Core" in doc

    def test_pool_listed(self, report):
        doc = render_html_report(report)
        assert "bottleneck pool" in doc

    def test_roofline_plots_embedded(self, report, model):
        doc = render_html_report(report, model=model, plot_count=2)
        assert doc.count("<svg") >= 1

    def test_bootstrap_section(self, report, model):
        workload = SampleSet(
            [sample("stalls", 3.0, 1.0) for _ in range(10)]
            + [sample("dsb_uops", 10.0, 1.0) for _ in range(10)]
        )
        boot = bootstrap_estimates(
            model, workload, resamples=20, rng=random.Random(0)
        )
        doc = render_html_report(report, bootstrap=boot)
        assert "Bootstrap confidence" in doc
        assert "P(min)" in doc

    def test_tma_section(self, report, small_experiment):
        tma = small_experiment.testing_runs["tnn"].tma
        doc = render_html_report(report, tma=tma)
        assert "Top-Down baseline" in doc
        assert "front_end_bound" in doc

    def test_save(self, report, model, tmp_path):
        path = save_html_report(tmp_path / "deep" / "report.html", report, model)
        assert path.exists()
        assert path.read_text().startswith("<!DOCTYPE html>")


class TestEndToEnd:
    def test_full_experiment_report(self, small_experiment, tmp_path):
        report = small_experiment.analyze("onnx", top_k=10)
        run = small_experiment.testing_runs["onnx"]
        path = save_html_report(
            tmp_path / "onnx.html",
            report,
            model=small_experiment.model,
            tma=run.tma,
        )
        doc = path.read_text()
        assert "cycle_activity" in doc
        assert "<svg" in doc
        assert default_catalog().areas()[report.top(1)[0].metric] in doc
