"""Unit tests for multi-core shared-resource contention."""

import random

import pytest

from repro.errors import ConfigError
from repro.uarch import MulticoreSystem, SharedResourceConfig, skylake_gold_6126
from repro.uarch.spec import WindowSpec

MEMORY_SPEC = WindowSpec(
    frac_loads=0.35,
    l1_miss_per_load=0.08,
    l2_miss_fraction=0.7,
    l3_miss_fraction=0.3,
    mlp=4.0,
    instructions=20_000,
)
COMPUTE_SPEC = WindowSpec(
    frac_loads=0.1, l1_miss_per_load=0.0, ilp=4.0, instructions=20_000
)


@pytest.fixture
def machine():
    return skylake_gold_6126()


def solo_ipc(machine, spec):
    system = MulticoreSystem(machine, n_cores=1)
    return system.simulate_step([spec])[0].ipc


class TestValidation:
    def test_core_count(self, machine):
        with pytest.raises(ConfigError):
            MulticoreSystem(machine, n_cores=0)

    def test_spec_count_must_match(self, machine):
        system = MulticoreSystem(machine, n_cores=2)
        with pytest.raises(ConfigError):
            system.simulate_step([MEMORY_SPEC])

    def test_ragged_sequences_rejected(self, machine):
        system = MulticoreSystem(machine, n_cores=2)
        with pytest.raises(ConfigError):
            system.run([[MEMORY_SPEC], [MEMORY_SPEC, MEMORY_SPEC]])

    def test_shared_config_validation(self):
        with pytest.raises(ConfigError):
            SharedResourceConfig(l3_demand_scale=0.0)
        with pytest.raises(ConfigError):
            SharedResourceConfig(max_l3_steal=1.0)
        with pytest.raises(ConfigError):
            SharedResourceConfig(dram_lines_per_cycle=0.0)


class TestContention:
    def test_single_core_matches_isolation(self, machine):
        system = MulticoreSystem(machine, n_cores=1)
        activity = system.simulate_step([MEMORY_SPEC])[0]
        # One core has no peers; only DRAM self-saturation could apply,
        # and this spec stays under the chip bandwidth.
        assert activity.ipc == pytest.approx(solo_ipc(machine, MEMORY_SPEC))

    def test_memory_pair_hurts_both(self, machine):
        solo = solo_ipc(machine, MEMORY_SPEC)
        system = MulticoreSystem(machine, n_cores=2)
        a, b = system.simulate_step([MEMORY_SPEC, MEMORY_SPEC])
        assert a.ipc < solo
        assert b.ipc < solo

    def test_compute_pair_unaffected(self, machine):
        solo = solo_ipc(machine, COMPUTE_SPEC)
        system = MulticoreSystem(machine, n_cores=2)
        a, b = system.simulate_step([COMPUTE_SPEC, COMPUTE_SPEC])
        assert a.ipc == pytest.approx(solo, rel=1e-6)
        assert b.ipc == pytest.approx(solo, rel=1e-6)

    def test_memory_aggressor_hurts_victim(self, machine):
        victim_solo = solo_ipc(machine, MEMORY_SPEC)
        system = MulticoreSystem(machine, n_cores=2)
        victim, aggressor = system.simulate_step([MEMORY_SPEC, MEMORY_SPEC])
        compute_system = MulticoreSystem(machine, n_cores=2)
        victim_vs_compute, _ = compute_system.simulate_step(
            [MEMORY_SPEC, COMPUTE_SPEC]
        )
        # A memory aggressor hurts more than a compute neighbour.
        assert victim.ipc < victim_vs_compute.ipc <= victim_solo + 1e-9

    def test_l3_traffic_shifts_to_dram(self, machine):
        system = MulticoreSystem(machine, n_cores=2)
        solo_system = MulticoreSystem(machine, n_cores=1)
        solo = solo_system.simulate_step([MEMORY_SPEC])[0]
        contended, _ = system.simulate_step([MEMORY_SPEC, MEMORY_SPEC])
        assert contended.dram_served > solo.dram_served
        assert contended.l3_served < solo.l3_served
        assert contended.l1_misses == pytest.approx(solo.l1_misses)

    def test_activities_stay_consistent(self, machine):
        system = MulticoreSystem(machine, n_cores=3)
        rng = random.Random(0)
        for _ in range(5):
            for activity in system.simulate_step(
                [MEMORY_SPEC, COMPUTE_SPEC, MEMORY_SPEC], rng
            ):
                activity.check_consistency()

    def test_more_cores_more_pressure(self, machine):
        two = MulticoreSystem(machine, n_cores=2)
        four = MulticoreSystem(machine, n_cores=4)
        ipc_two = two.simulate_step([MEMORY_SPEC] * 2)[0].ipc
        ipc_four = four.simulate_step([MEMORY_SPEC] * 4)[0].ipc
        assert ipc_four < ipc_two

    def test_run_shapes(self, machine):
        system = MulticoreSystem(machine, n_cores=2)
        results = system.run([[MEMORY_SPEC] * 4, [COMPUTE_SPEC] * 4])
        assert len(results) == 2
        assert all(len(seq) == 4 for seq in results)


class TestAnalysisOnCoLocation:
    def test_spire_sees_memory_pressure_rise(self, machine, small_experiment):
        """Per-core samples from a co-located run still feed SPIRE; the
        victim's memory metrics tighten under contention."""
        from repro.core.sample import Sample, SampleSet
        from repro.counters.events import default_catalog

        catalog = default_catalog()

        def samples_from(activities):
            samples = SampleSet()
            for activity in activities:
                counts = catalog.compute_all(activity, machine)
                for name, value in counts.items():
                    if catalog.get(name).fixed:
                        continue
                    samples.add(
                        Sample(name, activity.cycles, activity.instructions,
                               value)
                    )
            return samples

        rng = random.Random(1)
        solo_system = MulticoreSystem(machine, n_cores=1)
        solo_acts = [
            solo_system.simulate_step([MEMORY_SPEC], rng)[0] for _ in range(12)
        ]
        pair_system = MulticoreSystem(machine, n_cores=2)
        rng = random.Random(1)
        pair_acts = [
            pair_system.simulate_step([MEMORY_SPEC, MEMORY_SPEC], rng)[0]
            for _ in range(12)
        ]

        model = small_experiment.model
        solo_est = model.estimate(samples_from(solo_acts))
        pair_est = model.estimate(samples_from(pair_acts))
        assert pair_est.throughput < solo_est.throughput
