"""Unit tests for the Top-Down drilldown walker."""

import random

import pytest

from repro.counters import CollectionConfig, SampleCollector
from repro.errors import DataError
from repro.tma import TopDownAnalyzer, drilldown
from repro.uarch import CoreModel
from repro.uarch.spec import WindowSpec


def tma_for(machine, core, spec, seed=0):
    collector = SampleCollector(
        machine, config=CollectionConfig(multiplex=False, windows_per_period=5)
    )
    result = collector.collect(core, [spec] * 20, rng=random.Random(seed))
    return TopDownAnalyzer(machine).analyze(result.full_counts)


class TestDrilldownPaths:
    def test_memory_workload_reaches_dram(self, machine, core):
        result = tma_for(
            machine,
            core,
            WindowSpec(
                frac_loads=0.4, l1_miss_per_load=0.12, l2_miss_fraction=0.8,
                l3_miss_fraction=0.85, mlp=2.0,
            ),
        )
        walk = drilldown(result)
        assert walk.path[0] == "back_end_bound"
        assert "memory_bound" in walk.path
        assert walk.leaf.name == "dram_bound"
        assert "DRAM" in walk.advice

    def test_divider_workload_reaches_divider(self, machine, core):
        result = tma_for(
            machine, core, WindowSpec(frac_divides=0.02, ilp=4.0)
        )
        walk = drilldown(result)
        assert walk.path[:2] == ["back_end_bound", "core_bound"]
        assert walk.leaf.name == "divider"

    def test_branchy_workload(self, machine, core):
        result = tma_for(
            machine,
            core,
            WindowSpec(frac_branches=0.25, branch_mispredict_rate=0.12, ilp=4.0),
        )
        walk = drilldown(result)
        assert walk.path[0] == "bad_speculation"
        assert walk.leaf.name == "branch_mispredicts"

    def test_frontend_workload(self, machine, core):
        result = tma_for(
            machine,
            core,
            WindowSpec(dsb_coverage=0.0, fe_bubble_rate=0.0, ilp=4.0,
                       uops_per_instruction=1.4),
        )
        walk = drilldown(result)
        assert walk.path[0] == "front_end_bound"
        assert walk.leaf.name == "fetch_bandwidth"

    def test_retiring_included_when_requested(self, machine, core):
        spec = WindowSpec(
            ilp=8.0, dsb_coverage=1.0, branch_mispredict_rate=0.0,
            l1_miss_per_load=0.0, fe_bubble_rate=0.0, uops_per_instruction=1.0,
        )
        result = tma_for(machine, core, spec)
        bottleneck_walk = drilldown(result)
        healthy_walk = drilldown(result, include_retiring=True)
        assert bottleneck_walk.path[0] != "retiring"
        assert healthy_walk.path[0] == "retiring"
        assert healthy_walk.leaf.name in ("base", "retiring")

    def test_fractions_non_increasing_down_the_path(self, machine, core):
        result = tma_for(
            machine, core, WindowSpec(frac_loads=0.4, l1_miss_per_load=0.1)
        )
        walk = drilldown(result)
        fractions = [step.fraction for step in walk.steps]
        assert all(b <= a + 1e-9 for a, b in zip(fractions, fractions[1:]))

    def test_minimum_fraction_stops_walk(self, machine, core):
        result = tma_for(machine, core, WindowSpec())
        shallow = drilldown(result, minimum_fraction=0.99)
        assert len(shallow.steps) == 1

    def test_render(self, machine, core):
        result = tma_for(
            machine, core, WindowSpec(frac_loads=0.4, l1_miss_per_load=0.1)
        )
        text = drilldown(result).render()
        assert "%" in text
        assert "->" in text

    def test_validation(self, machine, core):
        result = tma_for(machine, core, WindowSpec())
        with pytest.raises(DataError):
            drilldown(result, minimum_fraction=1.0)
