"""Unit tests for repro.geometry.piecewise."""

import math

import pytest

from repro.geometry.piecewise import Breakpoint, PiecewiseLinear, merge_min


class TestConstruction:
    def test_single_breakpoint_is_constant(self):
        f = PiecewiseLinear([(2.0, 5.0)])
        assert f(0.0) == 5.0
        assert f(2.0) == 5.0
        assert f(100.0) == 5.0

    def test_empty_breakpoints_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([])

    def test_unsorted_breakpoints_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            PiecewiseLinear([(2.0, 1.0), (1.0, 2.0)])

    def test_accepts_breakpoint_objects_and_tuples(self):
        f = PiecewiseLinear([Breakpoint(0.0, 0.0), (1.0, 2.0)])
        assert len(f) == 2

    def test_equal_x_breakpoints_allowed(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 4.0), (1.0, 2.0), (3.0, 1.0)])
        assert len(f) == 4

    def test_repr_contains_points(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.5, 2.0)])
        assert "1.5" in repr(f)

    def test_equality(self):
        a = PiecewiseLinear([(0.0, 0.0), (1.0, 1.0)])
        b = PiecewiseLinear([(0.0, 0.0), (1.0, 1.0)])
        c = PiecewiseLinear([(0.0, 0.0), (1.0, 2.0)])
        assert a == b
        assert a != c
        assert a != "not a function"


class TestEvaluation:
    def test_linear_interpolation(self):
        f = PiecewiseLinear([(0.0, 0.0), (10.0, 20.0)])
        assert f(5.0) == pytest.approx(10.0)
        assert f(2.5) == pytest.approx(5.0)

    def test_constant_extension_left_and_right(self):
        f = PiecewiseLinear([(1.0, 3.0), (2.0, 7.0)])
        assert f(0.0) == 3.0
        assert f(-5.0) == 3.0
        assert f(3.0) == 7.0
        assert f(math.inf) == 7.0

    def test_exact_breakpoint_hit(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 5.0), (2.0, 3.0)])
        assert f(1.0) == 5.0

    def test_step_discontinuity_returns_lower_value(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 5.0), (1.0, 2.0), (2.0, 1.0)])
        assert f(1.0) == 2.0
        assert f(0.5) == pytest.approx(2.5)
        assert f(1.5) == pytest.approx(1.5)

    def test_nan_rejected(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(ValueError, match="NaN"):
            f(math.nan)

    def test_evaluate_many(self):
        f = PiecewiseLinear([(0.0, 0.0), (2.0, 4.0)])
        assert f.evaluate_many([0.0, 1.0, 2.0]) == [0.0, 2.0, 4.0]

    def test_multi_segment(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 4.0), (3.0, 6.0), (5.0, 6.0)])
        assert f(0.5) == pytest.approx(2.0)
        assert f(2.0) == pytest.approx(5.0)
        assert f(4.0) == pytest.approx(6.0)


class TestGeometryHelpers:
    def test_slopes_skips_vertical_steps(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 4.0), (1.0, 2.0), (3.0, 0.0)])
        assert f.slopes() == pytest.approx([4.0, -1.0])

    def test_segments_count(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        assert len(f.segments()) == 2

    def test_is_upper_bound_true(self):
        f = PiecewiseLinear([(0.0, 0.0), (10.0, 10.0)])
        assert f.is_upper_bound_of([(5.0, 4.9), (10.0, 10.0)])

    def test_is_upper_bound_false(self):
        f = PiecewiseLinear([(0.0, 0.0), (10.0, 10.0)])
        assert not f.is_upper_bound_of([(5.0, 5.5)])

    def test_is_upper_bound_relative_tolerance(self):
        f = PiecewiseLinear([(0.0, 0.0), (10.0, 1e9)])
        # A violation far below the relative tolerance passes.
        assert f.is_upper_bound_of([(10.0, 1e9 * (1 + 1e-12))])

    def test_translated(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 1.0)]).translated(1.0, 2.0)
        assert f.breakpoints[0].as_tuple() == (1.0, 2.0)

    def test_scaled(self):
        f = PiecewiseLinear([(1.0, 2.0), (2.0, 4.0)]).scaled(2.0, 0.5)
        assert f.breakpoints[1].as_tuple() == (4.0, 2.0)

    def test_scaled_rejects_nonpositive_x(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(ValueError):
            f.scaled(-1.0, 1.0)

    def test_x_bounds(self):
        f = PiecewiseLinear([(1.0, 2.0), (5.0, 4.0)])
        assert f.x_min == 1.0
        assert f.x_max == 5.0


class TestSerialization:
    def test_round_trip(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 5.0), (1.0, 2.0)])
        assert PiecewiseLinear.from_dict(f.to_dict()) == f


class TestMergeMin:
    def test_pointwise_minimum(self):
        a = PiecewiseLinear([(0.0, 0.0), (10.0, 10.0)])
        b = PiecewiseLinear([(0.0, 5.0), (10.0, 5.0)])
        assert merge_min([a, b], [0.0, 5.0, 10.0]) == [0.0, 5.0, 5.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_min([], [1.0])
