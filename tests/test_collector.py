"""Unit tests for multiplexed sample collection."""

import math
import random

import pytest

from repro.counters.collector import (
    CollectionConfig,
    SampleCollector,
    chunk_events,
)
from repro.errors import ConfigError
from repro.uarch.core import CoreModel
from repro.uarch.spec import WindowSpec


class TestChunking:
    def test_even_split(self):
        assert chunk_events(list("abcd"), 2) == [["a", "b"], ["c", "d"]]

    def test_ragged_tail(self):
        assert chunk_events(list("abcde"), 2) == [["a", "b"], ["c", "d"], ["e"]]

    def test_invalid_size(self):
        with pytest.raises(ConfigError):
            chunk_events(["a"], 0)


class TestConfigValidation:
    def test_invalid_period(self):
        with pytest.raises(ConfigError):
            CollectionConfig(windows_per_period=0)

    def test_negative_overhead(self):
        with pytest.raises(ConfigError):
            CollectionConfig(switch_overhead_cycles=-1)

    def test_fixed_event_in_list_rejected(self, machine):
        collector = SampleCollector(
            machine, config=CollectionConfig(events=("inst_retired.any",))
        )
        with pytest.raises(ConfigError, match="fixed"):
            collector.collect(CoreModel(machine), [WindowSpec()])

    def test_bad_work_event_rejected(self, machine):
        with pytest.raises(ConfigError):
            SampleCollector(machine, work_event="not.an.event")


class TestMultiplexedCollection:
    @pytest.fixture
    def result(self, machine, core):
        config = CollectionConfig(
            windows_per_period=12,
            events=(
                "idq.dsb_uops",
                "br_misp_retired.all_branches",
                "longest_lat_cache.miss",
                "resource_stalls.any",
                "idq.ms_switches",
                "mem_inst_retired.lock_loads",
            ),
        )
        collector = SampleCollector(machine, config=config)
        specs = [WindowSpec(instructions=5_000)] * 48
        return collector.collect(core, specs, rng=random.Random(0))

    def test_every_event_sampled(self, result):
        assert sorted(result.samples.metrics()) == sorted(
            [
                "idq.dsb_uops",
                "br_misp_retired.all_branches",
                "longest_lat_cache.miss",
                "resource_stalls.any",
                "idq.ms_switches",
                "mem_inst_retired.lock_loads",
            ]
        )

    def test_period_count(self, result):
        assert result.periods == 4  # 48 windows / 12 per period

    def test_samples_have_positive_time(self, result):
        assert all(s.time > 0 for s in result.samples)

    def test_sample_time_below_total(self, result):
        # Each multiplexed sample saw only its own slices.
        for s in result.samples:
            assert s.time < result.total_cycles

    def test_full_counts_cover_catalog(self, result, machine):
        assert result.full_counts["inst_retired.any"] == pytest.approx(
            result.total_instructions
        )
        assert result.full_counts["cpu_clk_unhalted.thread"] == pytest.approx(
            result.total_cycles
        )

    def test_overhead_accounted(self, result):
        assert result.overhead_cycles > 0
        assert 0 < result.overhead_fraction < 0.5

    def test_measured_ipc_sane(self, result, machine):
        assert 0 < result.measured_ipc <= machine.pipeline_width

    def test_aggregate_activity_matches_totals(self, result):
        agg = result.aggregate_activity
        assert agg.instructions == pytest.approx(result.total_instructions)
        assert agg.cycles == pytest.approx(result.total_cycles)


class TestUnmultiplexedCollection:
    def test_rectangular_samples(self, machine, core):
        config = CollectionConfig(
            windows_per_period=6,
            multiplex=False,
            events=("idq.dsb_uops", "longest_lat_cache.miss"),
        )
        collector = SampleCollector(machine, config=config)
        result = collector.collect(core, [WindowSpec(instructions=5_000)] * 18)
        grouped = result.samples.grouped()
        lengths = {len(v) for v in grouped.values()}
        assert lengths == {3}  # 18/6 periods for every metric

    def test_unmultiplexed_shares_time_and_work(self, machine, core):
        config = CollectionConfig(
            windows_per_period=6,
            multiplex=False,
            events=("idq.dsb_uops", "longest_lat_cache.miss"),
        )
        collector = SampleCollector(machine, config=config)
        result = collector.collect(core, [WindowSpec(instructions=5_000)] * 6)
        by_metric = result.samples.grouped()
        t1 = by_metric["idq.dsb_uops"][0].time
        t2 = by_metric["longest_lat_cache.miss"][0].time
        assert t1 == pytest.approx(t2)

    def test_no_overhead_when_unmultiplexed(self, machine, core):
        config = CollectionConfig(multiplex=False, events=("idq.dsb_uops",))
        collector = SampleCollector(machine, config=config)
        result = collector.collect(core, [WindowSpec()] * 4)
        assert result.overhead_cycles == 0.0


class TestDefaults:
    def test_defaults_cover_all_programmable_events(self, machine, core):
        collector = SampleCollector(
            machine, config=CollectionConfig(windows_per_period=60)
        )
        specs = [WindowSpec(instructions=2_000)] * 60
        result = collector.collect(core, specs, rng=random.Random(1))
        from repro.counters.events import default_catalog

        assert sorted(result.samples.metrics()) == sorted(
            default_catalog().programmable_names
        )

    def test_partial_final_period_flushed(self, machine, core):
        config = CollectionConfig(
            windows_per_period=10, events=("idq.dsb_uops",)
        )
        collector = SampleCollector(machine, config=config)
        result = collector.collect(core, [WindowSpec()] * 15)
        assert result.periods == 2

    def test_infinite_intensity_samples_supported(self, machine, core):
        # A workload that never misses to DRAM yields zero-count samples
        # for the L3 metric, i.e. infinite operational intensity.
        config = CollectionConfig(
            multiplex=False, events=("longest_lat_cache.miss",), windows_per_period=2
        )
        collector = SampleCollector(machine, config=config)
        spec = WindowSpec(l1_miss_per_load=0.0)
        result = collector.collect(core, [spec] * 2)
        sample = result.samples.for_metric("longest_lat_cache.miss")[0]
        assert math.isinf(sample.intensity)
