"""The columnar sample container: SampleArray and its SampleSet bridge."""

import math
import pickle

import numpy as np
import pytest

from repro.core.columns import (
    SampleArray,
    as_sample_array,
    infinite_intensity_mask,
    time_weighted_mean,
)
from repro.core.sample import Sample, SampleSet, time_weighted_average
from repro.errors import DataError


def make_samples():
    return [
        Sample("a", time=2.0, work=8.0, metric_count=4.0),
        Sample("b", time=1.0, work=3.0, metric_count=0.0),
        Sample("a", time=4.0, work=4.0, metric_count=1.0),
        Sample("c", time=1.0, work=0.0, metric_count=2.0),
    ]


def test_from_samples_round_trip_is_lossless():
    samples = make_samples()
    array = SampleArray.from_samples(samples)
    assert len(array) == 4
    again = list(array.iter_samples())
    assert again == samples
    assert array.to_sample_set().to_records() == [s.to_dict() for s in samples]


def test_metric_interning_preserves_first_seen_order():
    array = SampleArray.from_samples(make_samples())
    assert array.metric_names == ("a", "b", "c")
    assert array.metrics() == ["a", "b", "c"]
    assert array.metric_ids.tolist() == [0, 1, 0, 2]


def test_derived_columns_match_sample_properties():
    samples = make_samples()
    array = SampleArray.from_samples(samples)
    for row, sample in enumerate(samples):
        assert array.throughput[row] == sample.throughput
        assert array.intensity[row] == sample.intensity
    assert array.finite_intensity_mask.tolist() == [True, False, True, True]
    assert infinite_intensity_mask(array.metric_count).tolist() == [
        False,
        True,
        False,
        False,
    ]


def test_group_indices_and_for_metric():
    array = SampleArray.from_samples(make_samples())
    groups = array.group_indices()
    assert list(groups) == ["a", "b", "c"]
    assert groups["a"].tolist() == [0, 2]
    sub = array.for_metric("a")
    assert sub.time.tolist() == [2.0, 4.0]
    assert sub.metric_names[int(sub.metric_ids[0])] == "a"


def test_select_and_concat_round_trip():
    array = SampleArray.from_samples(make_samples())
    front = array.select(np.array([0, 1]))
    back = array.select(np.array([2, 3]))
    merged = SampleArray.concat([front, back])
    assert list(merged.iter_samples()) == make_samples()


def test_total_time_and_measured_throughput_match_scalar():
    samples = make_samples()
    array = SampleArray.from_samples(samples)
    sample_set = SampleSet(samples)
    assert array.total_time() == sample_set.total_time()
    assert array.measured_throughput() == sample_set.measured_throughput()


def test_time_weighted_mean_matches_scalar_exactly():
    values = [1.0, 1.0 / 3.0, 2.0 / 7.0, 5.0]
    times = [3.0, 1.0 / 9.0, 2.0, 0.5]
    expected = time_weighted_average(values, times)
    assert time_weighted_mean(np.array(values), np.array(times)) == expected


def test_from_records_missing_field_raises_data_error():
    with pytest.raises(DataError, match="missing field"):
        SampleArray.from_records([{"metric": "a", "time": 1.0, "work": 1.0}])


def test_from_records_invalid_value_raises_like_sample():
    records = [{"metric": "a", "time": -1.0, "work": 1.0, "metric_count": 1.0}]
    with pytest.raises(DataError) as vectorized:
        SampleArray.from_records(records)
    with pytest.raises(DataError) as scalar:
        Sample.from_dict(records[0])
    assert str(vectorized.value) == str(scalar.value)


def test_from_records_without_validation_admits_dirty_rows():
    records = [
        {"metric": "a", "time": "bogus", "work": 1.0, "metric_count": 1.0},
        {"metric": "a", "time": 2.0, "work": 4.0, "metric_count": 1.0},
    ]
    array = SampleArray.from_records(records, validate=False)
    assert math.isnan(array.time[0])
    assert array.time[1] == 2.0


def test_validate_reports_first_offending_row():
    array = SampleArray.from_lists(
        ["a", "a"], [1.0, float("nan")], [1.0, 1.0], [1.0, 1.0]
    )
    with pytest.raises(DataError) as vectorized:
        array.validate()
    with pytest.raises(DataError) as scalar:
        Sample("a", time=float("nan"), work=1.0, metric_count=1.0)
    assert str(vectorized.value) == str(scalar.value)


def test_pickle_round_trip():
    array = SampleArray.from_samples(make_samples())
    clone = pickle.loads(pickle.dumps(array))
    assert list(clone.iter_samples()) == make_samples()
    assert clone.metric_names == array.metric_names


def test_empty_array():
    array = SampleArray.empty()
    assert len(array) == 0
    assert array.metrics() == []
    assert array.total_time() == 0.0
    assert len(SampleArray.concat([])) == 0


def test_as_sample_array_accepts_sets_lists_and_arrays():
    samples = make_samples()
    from_list = as_sample_array(samples)
    from_set = as_sample_array(SampleSet(samples))
    assert list(from_list.iter_samples()) == samples
    assert list(from_set.iter_samples()) == samples
    assert as_sample_array(from_list) is from_list


def test_sample_set_from_columns_is_lazy_and_lossless():
    samples = make_samples()
    array = SampleArray.from_samples(samples)
    lazy = SampleSet.from_columns(array)
    # Aggregates come straight from the columns...
    assert len(lazy) == len(samples)
    assert lazy.metrics() == ["a", "b", "c"]
    assert lazy.total_time() == SampleSet(samples).total_time()
    # ...and materialization on demand reproduces the objects.
    assert list(lazy) == samples


def test_sample_set_grouped_is_cached():
    sample_set = SampleSet(make_samples())
    first = sample_set.grouped()
    # The per-metric lists are computed once and shared across calls...
    assert sample_set.grouped()["a"] is first["a"]
    # ...and the cache is invalidated by mutation.
    sample_set.add(Sample("d", time=1.0, work=1.0, metric_count=1.0))
    assert "d" in sample_set.grouped()
