"""Unit tests for the reusable table renderers."""

import pytest

from repro.errors import DataError
from repro.reporting import (
    render_summary,
    render_table1,
    render_table2,
    render_table3,
)


class TestTable1:
    def test_text_contains_all_workloads(self, small_experiment):
        text = render_table1(small_experiment)
        assert "Table I" in text
        for name in small_experiment.training_runs:
            assert name in text
        for name in small_experiment.testing_runs:
            assert name in text

    def test_markdown_structure(self, small_experiment):
        text = render_table1(small_experiment, style="markdown")
        assert "| workload |" in text
        assert text.count("|---") >= 1

    def test_bad_format_rejected(self, small_experiment):
        with pytest.raises(DataError):
            render_table1(small_experiment, style="latex")


class TestTable2:
    def test_contains_measured_ipc_and_areas(self, small_experiment):
        text = render_table2(small_experiment, top_k=5)
        assert "measured IPC" in text
        assert "Front-End" in text
        assert "tnn" in text

    def test_respects_top_k(self, small_experiment):
        short = render_table2(small_experiment, top_k=3)
        long = render_table2(small_experiment, top_k=10)
        assert len(long.splitlines()) > len(short.splitlines())

    def test_markdown(self, small_experiment):
        text = render_table2(small_experiment, top_k=3, style="markdown")
        assert "| est. IPC |" in text


class TestTable3:
    def test_all_abbreviations_present(self):
        text = render_table3()
        for abbr in ("FE.1", "DB.2", "DQ.K", "BP.1", "L1.3", "CS.6", "C1.3",
                     "VW", "LK", "M"):
            assert abbr in text

    def test_markdown(self):
        text = render_table3(style="markdown")
        assert "| area |" in text


class TestSummary:
    def test_summary_agreement_line(self, small_experiment):
        text = render_summary(small_experiment)
        assert "agreement:" in text
        assert "/4 test workloads" in text
        assert "tnn" in text
