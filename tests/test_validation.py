"""Unit tests for cross-validation and rank-stability utilities."""

import random

import pytest

from repro.core.ensemble import SpireModel
from repro.core.sample import Sample, SampleSet
from repro.core.validation import cross_validate, rank_stability
from repro.errors import EstimationError


def sample(metric, intensity, throughput, work=1000.0):
    return Sample(
        metric, time=work / throughput, work=work, metric_count=work / intensity
    )


@pytest.fixture
def big_set(rng):
    samples = SampleSet()
    for _ in range(300):
        i = rng.uniform(1, 50)
        samples.add(sample("stalls", i, (4 * i / (i + 6)) * rng.uniform(0.4, 1.0)))
        i = rng.uniform(1, 100)
        samples.add(sample("dsb", i, (12 / (3 + i)) * rng.uniform(0.4, 1.0)))
    return samples


class TestCrossValidate:
    def test_report_shape(self, big_set):
        report = cross_validate(big_set, k=4)
        assert len(report.folds) == 4
        assert all(f.held_out_samples > 0 for f in report.folds)

    def test_violation_statistics_bounded(self, big_set):
        report = cross_validate(big_set, k=4)
        assert 0.0 <= report.mean_violation_fraction <= 1.0
        assert report.mean_violation >= 0.0
        assert report.max_violation >= report.mean_violation

    def test_violations_are_small_for_dense_data(self, big_set):
        # With 300 samples per metric the envelope is nearly converged:
        # held-out violations exist but are tiny relative to throughput.
        report = cross_validate(big_set, k=5)
        assert report.mean_violation < 0.5

    def test_deterministic_with_seed(self, big_set):
        a = cross_validate(big_set, k=3, rng=random.Random(5))
        b = cross_validate(big_set, k=3, rng=random.Random(5))
        assert a.folds == b.folds

    def test_k_validation(self, big_set):
        with pytest.raises(EstimationError):
            cross_validate(big_set, k=1)

    def test_too_few_samples(self):
        tiny = SampleSet([sample("m", 1, 1.0)])
        with pytest.raises(EstimationError):
            cross_validate(tiny, k=5)

    def test_render(self, big_set):
        text = cross_validate(big_set, k=3).render()
        assert "overall" in text
        assert "violated" in text


class TestRankStability:
    def test_stable_for_clear_bottleneck(self, big_set):
        model = SpireModel.train(big_set)
        workload = SampleSet(
            [sample("stalls", 2.0, 1.0) for _ in range(50)]
            + [sample("dsb", 5.0, 1.0) for _ in range(50)]
        )
        stability = rank_stability(model, workload, top_k=2, resamples=20)
        assert stability == pytest.approx(1.0)

    def test_in_unit_interval(self, big_set, rng):
        model = SpireModel.train(big_set)
        workload = SampleSet(
            [sample("stalls", rng.uniform(1, 50), 1.0) for _ in range(20)]
            + [sample("dsb", rng.uniform(1, 100), 1.0) for _ in range(20)]
        )
        stability = rank_stability(model, workload, top_k=1, resamples=30)
        assert 0.0 <= stability <= 1.0

    def test_resample_validation(self, big_set):
        model = SpireModel.train(big_set)
        with pytest.raises(EstimationError):
            rank_stability(model, big_set, resamples=0)
