"""Unit tests for the shared-resource interference model."""

import random

import pytest

from repro.errors import ConfigError
from repro.uarch import CoreModel, InterferenceConfig, InterferenceModel
from repro.uarch.spec import WindowSpec


@pytest.fixture
def memory_spec():
    return WindowSpec(
        frac_loads=0.35,
        l1_miss_per_load=0.06,
        l2_miss_fraction=0.6,
        l3_miss_fraction=0.3,
        instructions=20_000,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            InterferenceConfig(l3_steal_fraction=1.5)
        with pytest.raises(ConfigError):
            InterferenceConfig(dram_slowdown=0.5)
        with pytest.raises(ConfigError):
            InterferenceConfig(variability=2.0)
        with pytest.raises(ConfigError):
            InterferenceConfig(period_windows=0)


class TestPerturbation:
    def test_interference_slows_the_window(self, core, memory_spec):
        clean = core.simulate_window(memory_spec)
        perturbed = InterferenceModel(rng=random.Random(0)).perturb(
            core.simulate_window(memory_spec)
        )
        assert perturbed.cycles >= clean.cycles
        assert perturbed.ipc <= clean.ipc

    def test_l3_traffic_moves_to_dram(self, core, memory_spec):
        clean = core.simulate_window(memory_spec)
        perturbed = InterferenceModel(
            InterferenceConfig(l3_steal_fraction=0.8), rng=random.Random(0)
        ).perturb(core.simulate_window(memory_spec))
        assert perturbed.l3_served < clean.l3_served
        assert perturbed.dram_served > clean.dram_served
        # Total L1 misses conserved: lines moved levels, none vanished.
        assert perturbed.l1_misses == pytest.approx(clean.l1_misses)

    def test_consistency_preserved(self, core, memory_spec):
        model = InterferenceModel(rng=random.Random(1))
        for _ in range(10):
            activity = model.perturb(core.simulate_window(memory_spec))
            activity.check_consistency()

    def test_pressure_varies_over_windows(self, core, memory_spec):
        model = InterferenceModel(
            InterferenceConfig(period_windows=10), rng=random.Random(2)
        )
        extra = []
        clean_cycles = core.simulate_window(memory_spec).cycles
        for _ in range(20):
            perturbed = model.perturb(core.simulate_window(memory_spec))
            extra.append(perturbed.cycles - clean_cycles)
        assert max(extra) > min(extra)  # the co-runner has phases

    def test_compute_workload_barely_affected(self, core):
        spec = WindowSpec(l1_miss_per_load=0.0, frac_loads=0.1)
        clean = core.simulate_window(spec)
        perturbed = InterferenceModel(rng=random.Random(3)).perturb(
            core.simulate_window(spec)
        )
        assert perturbed.cycles == pytest.approx(clean.cycles, rel=1e-6)

    def test_reset(self, core, memory_spec):
        model = InterferenceModel(rng=random.Random(4))
        first = model.perturb(core.simulate_window(memory_spec)).cycles
        model.reset()
        model.rng = random.Random(4)
        again = model.perturb(core.simulate_window(memory_spec)).cycles
        assert first == again
