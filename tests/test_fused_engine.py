"""The fused mega-batch engine: trace fusion and experiment fusion.

Three layers of guarantees:

- :meth:`TraceArray.concat_segments` round-trips: slicing the fused
  mega-trace at its segment offsets recovers every fragment bit-for-bit
  (packed-source CSR offsets rebased, rng-built columns untouched), and
  the per-row segment-index column maps rows back to their fragments;
- :meth:`TracePipeline.execute_array_windowed` — the batched-window plan
  — snapshots counters at window boundaries bit-identically to slicing
  the trace per window, across block boundaries, and the fused
  ``collect_trace_samples`` path emits the same samples as a manual
  per-window loop (rng streams stay aligned because every segment's
  trace is drawn from its own seeded generator before fusion);
- :func:`repro.runtime.fused.simulate_tasks_fused` produces
  ``WorkloadRun``s bit-identical to per-workload ``run_workload`` calls
  for randomized workload subsets, window counts and seeds (hypothesis),
  with the shared-memory transport preserving them byte-for-byte.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import ExperimentConfig, run_workload
from repro.runtime.fused import runs_equal, simulate_tasks_fused
from repro.runtime.plan import TESTING, TRAINING, WorkloadTask
from repro.runtime.shm import ShmRun, decode_run, encode_run
from repro.trace import TraceArray, TracePipeline, collect_trace_samples
from repro.trace.kernels import ARRAY_BUILDERS, array_builder_by_name
from repro.trace.sampling import _emit_rows
from repro.uarch.config import skylake_gold_6126
from repro.workloads import all_workloads

# ----------------------------------------------------------------------
# concat_segments: CSR round-trip and the segment-index column
# ----------------------------------------------------------------------


def _kernel_fragments(lengths, seed=0):
    names = sorted(ARRAY_BUILDERS)
    rng = random.Random(seed)
    return [
        array_builder_by_name(names[i % len(names)])(
            n, rng.random(), random.Random(seed * 100 + i)
        )
        if n
        else TraceArray.empty()
        for i, n in enumerate(lengths)
    ]


@pytest.mark.parametrize("lengths", [(5,), (64, 0, 130, 1), (300, 300, 7)])
def test_concat_segments_round_trips_fragments(lengths):
    fragments = _kernel_fragments(lengths, seed=3)
    fused, segment_ids, offsets = TraceArray.concat_segments(fragments)

    assert len(fused) == sum(lengths)
    assert offsets.tolist() == np.cumsum((0,) + lengths).tolist()
    assert segment_ids.tolist() == [
        i for i, n in enumerate(lengths) for _ in range(n)
    ]
    # The fused CSR stays well-formed: monotone offsets spanning exactly
    # the packed values.
    assert fused.src_offsets[0] == 0
    assert fused.src_offsets[-1] == len(fused.src_values)
    assert (np.diff(fused.src_offsets) >= 0).all()

    for index, fragment in enumerate(fragments):
        recovered = fused.slice(int(offsets[index]), int(offsets[index + 1]))
        assert recovered == fragment, index
        # Slice rebases the packed sources to stand alone.
        if len(recovered):
            assert recovered.src_offsets[0] == 0
            assert recovered.src_offsets[-1] == len(recovered.src_values)


def test_concat_segments_round_trips_microops():
    fragments = _kernel_fragments((40, 25, 60), seed=9)
    fused, _, offsets = TraceArray.concat_segments(fragments)
    for index, fragment in enumerate(fragments):
        sliced = fused.slice(int(offsets[index]), int(offsets[index + 1]))
        assert sliced.to_microops() == fragment.to_microops()


# ----------------------------------------------------------------------
# Windowed execution: one fused pass == per-window slicing
# ----------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    kernel=st.sampled_from(sorted(ARRAY_BUILDERS)),
    seed=st.integers(min_value=0, max_value=500),
    n_uops=st.integers(min_value=1, max_value=3_000),
    window=st.integers(min_value=1, max_value=900),
)
def test_execute_array_windowed_matches_sliced_windows(
    kernel, seed, n_uops, window
):
    trace = array_builder_by_name(kernel)(n_uops, 0.6, random.Random(seed))

    sliced = TracePipeline()
    expected = []
    for start in range(0, n_uops, window):
        sliced.execute_array(trace.slice(start, min(start + window, n_uops)))
        expected.append(sliced.snapshot())

    fused = TracePipeline()
    # A small block size forces windows to straddle block boundaries.
    got = fused._execute_windowed_fast(
        trace, list(range(window, n_uops, window)) + [n_uops], 1_024
    )

    assert [s.as_dict() for s in got] == [s.as_dict() for s in expected]
    assert fused.counters.as_dict() == sliced.counters.as_dict()
    assert fused._register_ready == sliced._register_ready
    assert fused._rob == sliced._rob


def test_collect_trace_samples_fused_matches_per_window_loop():
    """The fused sampling path vs a manual build/slice/emit loop.

    Equality here pins the rng-stream alignment across segment
    boundaries: both paths must draw each intensity's trace from its own
    ``Random(seed * 1000 + round)`` generator, so fusing the traces
    afterwards cannot perturb any column.
    """
    kwargs = dict(
        n_uops=4_000, window_uops=700, intensities=(0.2, 0.5, 0.9), seed=11
    )
    fused_run = collect_trace_samples("mixed", **kwargs)

    metrics, times, works, counts = [], [], [], []
    instructions = cycles = 0
    for round_index, intensity in enumerate(kwargs["intensities"]):
        rng = random.Random(kwargs["seed"] * 1_000 + round_index)
        trace = array_builder_by_name("mixed")(
            kwargs["n_uops"], intensity, rng
        )
        pipeline = TracePipeline()
        previous = pipeline.snapshot()
        for start in range(0, kwargs["n_uops"], kwargs["window_uops"]):
            pipeline.execute_array(
                trace.slice(
                    start, min(start + kwargs["window_uops"], kwargs["n_uops"])
                )
            )
            previous = _emit_rows(
                pipeline.snapshot(), previous, metrics, times, works, counts
            )
        instructions += pipeline.counters.instructions
        cycles += pipeline.counters.cycles
        final = pipeline.counters.as_dict()

    assert fused_run.instructions == instructions
    assert fused_run.cycles == cycles
    assert fused_run.final_counters == final
    columns = fused_run.samples.columns()
    assert list(columns.metric_names) == sorted(
        set(metrics), key=metrics.index
    )
    assert columns.time.tolist() == times
    assert columns.work.tolist() == works
    assert columns.metric_count.tolist() == counts


# ----------------------------------------------------------------------
# Fused experiment engine: hypothesis parity vs per-workload runs
# ----------------------------------------------------------------------


def _subset_tasks(indices, windows):
    suite = all_workloads()
    return [
        WorkloadTask(
            workload=suite[index % len(suite)],
            role=TRAINING if position % 2 else TESTING,
            n_windows=window,
        )
        for position, (index, window) in enumerate(zip(indices, windows))
    ]


@settings(max_examples=8, deadline=None)
@given(
    indices=st.lists(
        st.integers(min_value=0, max_value=26),
        min_size=2,
        max_size=4,
        unique=True,
    ),
    windows=st.lists(
        st.integers(min_value=6, max_value=18), min_size=4, max_size=4
    ),
    seed=st.integers(min_value=0, max_value=50),
)
def test_fused_mega_batch_matches_per_workload(indices, windows, seed):
    config = ExperimentConfig(windows_per_period=6, seed=seed)
    machine = skylake_gold_6126()
    tasks = _subset_tasks(indices, windows)

    fused = simulate_tasks_fused(tasks, machine, config)
    for task, fused_run in zip(tasks, fused):
        oracle = run_workload(task.workload, machine, task.n_windows, config)
        assert runs_equal(fused_run, oracle), task.name


def test_fused_engine_scalar_fallback_routes_oracle(monkeypatch):
    monkeypatch.setenv("SPIRE_SCALAR_FALLBACK", "1")
    config = ExperimentConfig(windows_per_period=6, seed=1)
    machine = skylake_gold_6126()
    tasks = _subset_tasks((0, 5), (6, 6))
    via_oracle = simulate_tasks_fused(tasks, machine, config)
    monkeypatch.delenv("SPIRE_SCALAR_FALLBACK")
    fast = simulate_tasks_fused(tasks, machine, config)
    for a, b in zip(via_oracle, fast):
        assert runs_equal(a, b)


# ----------------------------------------------------------------------
# Shared-memory transport preserves runs byte-for-byte
# ----------------------------------------------------------------------


def test_shm_transport_round_trip_is_bit_identical():
    config = ExperimentConfig(windows_per_period=6, seed=4)
    machine = skylake_gold_6126()
    workload = all_workloads()[2]
    run = run_workload(workload, machine, 8, config)

    encoded = encode_run(run)
    assert isinstance(encoded, ShmRun)
    # The handle pickles small: the columns live in the segment.
    assert not len(encoded.run.collection.samples)
    decoded = decode_run(encoded)
    assert runs_equal(decoded, run)


def test_shm_transport_disabled_passes_through(monkeypatch):
    monkeypatch.setenv("SPIRE_SHM", "0")
    from repro.runtime.shm import shm_enabled

    assert not shm_enabled()
    monkeypatch.setenv("SPIRE_SHM", "1")
    assert shm_enabled()
    # decode is a pass-through for plain runs (pickle transport).
    sentinel = object()
    assert decode_run(sentinel) is sentinel
