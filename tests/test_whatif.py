"""Unit tests for what-if speedup projection."""

import pytest

from repro.core.ensemble import SpireModel
from repro.core.sample import Sample, SampleSet
from repro.core.whatif import (
    improve_metric,
    project_improvement,
    render_sweep,
    sensitivity_sweep,
)
from repro.errors import EstimationError


def sample(metric, intensity, throughput, work=1000.0):
    return Sample(
        metric, time=work / throughput, work=work, metric_count=work / intensity
    )


@pytest.fixture
def model(two_metric_sampleset):
    return SpireModel.train(two_metric_sampleset)


@pytest.fixture
def workload():
    # Stalls bind hard (I=2 is deep in the rising region, bound ~1.0);
    # dsb_uops at I=2 is relaxed (bound ~2.4).
    return SampleSet(
        [sample("stalls", 2.0, 0.8), sample("dsb_uops", 2.0, 0.8)]
    )


@pytest.fixture
def dsb_bound_workload():
    # dsb_uops at I=20 binds (~0.5); stalls at I=40 is relaxed (~3.5).
    return SampleSet(
        [sample("stalls", 40.0, 0.4), sample("dsb_uops", 20.0, 0.4)]
    )


class TestImproveMetric:
    def test_intensity_scales(self, workload):
        improved = improve_metric(workload, "stalls", 4.0)
        original = workload.for_metric("stalls")[0]
        changed = improved.for_metric("stalls")[0]
        assert changed.intensity == pytest.approx(4.0 * original.intensity)
        assert changed.time == original.time
        assert changed.work == original.work

    def test_other_metrics_untouched(self, workload):
        improved = improve_metric(workload, "stalls", 4.0)
        assert improved.for_metric("dsb_uops")[0] == workload.for_metric(
            "dsb_uops"
        )[0]

    def test_validation(self, workload):
        with pytest.raises(EstimationError):
            improve_metric(workload, "stalls", 0.0)
        with pytest.raises(EstimationError):
            improve_metric(workload, "missing", 2.0)


class TestProjectImprovement:
    def test_improving_the_bottleneck_helps(self, model, workload):
        baseline = model.estimate(workload)
        assert baseline.limiting_metric == "stalls"
        result = project_improvement(model, workload, "stalls", factor=4.0)
        assert result.projected_speedup > 1.0

    def test_improving_a_non_bottleneck_does_nothing(
        self, model, dsb_bound_workload
    ):
        # Reducing stall events while dsb_uops binds changes nothing.
        result = project_improvement(
            model, dsb_bound_workload, "stalls", factor=4.0
        )
        assert result.projected_speedup == pytest.approx(1.0)
        assert result.limiting_metric_after == "dsb_uops"

    def test_speedup_monotone_in_factor_until_plateau(self, model, workload):
        previous = 1.0
        for factor in (1.5, 2.0, 4.0, 16.0):
            result = project_improvement(model, workload, "stalls", factor)
            assert result.projected_speedup >= previous - 1e-9
            previous = result.projected_speedup

    def test_plateau_detected(self, model, workload):
        # A huge improvement of the stall metric shifts the binding
        # constraint onto the other metric eventually.
        result = project_improvement(model, workload, "stalls", factor=1e6)
        assert result.plateaued
        assert result.limiting_metric_after == "dsb_uops"

    def test_not_plateaued_for_small_factor(self, model, workload):
        result = project_improvement(model, workload, "stalls", factor=1.2)
        assert result.limiting_metric_after == "stalls"
        assert not result.plateaued


class TestSweep:
    def test_sweep_covers_factors_and_metrics(self, model, workload):
        results = sensitivity_sweep(model, workload, factors=(2.0, 4.0), top_k=2)
        assert len(results) == 4
        factors = {r.factor for r in results}
        assert factors == {2.0, 4.0}

    def test_sweep_sorted_by_benefit(self, model, workload):
        results = sensitivity_sweep(model, workload, factors=(4.0,), top_k=2)
        bounds = [r.projected_bound for r in results]
        assert bounds == sorted(bounds, reverse=True)
        assert results[0].metric == "stalls"

    def test_empty_factors_rejected(self, model, workload):
        with pytest.raises(EstimationError):
            sensitivity_sweep(model, workload, factors=())

    def test_render(self, model, workload):
        text = render_sweep(sensitivity_sweep(model, workload, factors=(2.0,)))
        assert "speedup" in text
        assert "stalls" in text
