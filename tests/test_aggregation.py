"""Unit tests for ensemble aggregation strategies."""

import pytest

from repro.core.aggregation import (
    AGGREGATORS,
    aggregator_by_name,
    kth_smallest_aggregator,
    mean_aggregator,
    min_aggregator,
    softmin_aggregator,
)
from repro.errors import EstimationError

VALUES = {"a": 1.0, "b": 2.0, "c": 4.0}


class TestStockAggregators:
    def test_min(self):
        assert min_aggregator(VALUES) == 1.0

    def test_mean(self):
        assert mean_aggregator(VALUES) == pytest.approx(7.0 / 3.0)

    def test_kth(self):
        assert kth_smallest_aggregator(1)(VALUES) == 1.0
        assert kth_smallest_aggregator(2)(VALUES) == 2.0
        assert kth_smallest_aggregator(99)(VALUES) == 4.0  # clamped

    def test_softmin_between_min_and_mean(self):
        value = softmin_aggregator(0.5)(VALUES)
        assert min_aggregator(VALUES) <= value <= mean_aggregator(VALUES)

    def test_softmin_approaches_min_as_temperature_drops(self):
        cold = softmin_aggregator(1e-4)(VALUES)
        assert cold == pytest.approx(1.0, abs=1e-3)

    def test_softmin_monotone_in_temperature(self):
        a = softmin_aggregator(0.05)(VALUES)
        b = softmin_aggregator(0.5)(VALUES)
        c = softmin_aggregator(5.0)(VALUES)
        assert a <= b <= c

    def test_softmin_single_value_identity(self):
        assert softmin_aggregator(0.3)({"only": 2.5}) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(EstimationError):
            softmin_aggregator(0.0)
        with pytest.raises(EstimationError):
            kth_smallest_aggregator(0)
        with pytest.raises(EstimationError):
            min_aggregator({})
        with pytest.raises(EstimationError):
            mean_aggregator({})

    def test_lookup(self):
        assert aggregator_by_name("min") is min_aggregator
        assert set(AGGREGATORS) == {"min", "mean", "softmin", "second-smallest"}
        with pytest.raises(EstimationError):
            aggregator_by_name("max")


class TestOnEnsembleEstimate:
    def test_aggregate_method(self, two_metric_sampleset):
        from repro.core.ensemble import SpireModel

        model = SpireModel.train(two_metric_sampleset)
        estimate = model.estimate(two_metric_sampleset)
        assert estimate.aggregate(min_aggregator) == estimate.throughput
        assert estimate.aggregate(mean_aggregator) >= estimate.throughput
        soft = estimate.aggregate(softmin_aggregator(0.01))
        assert soft == pytest.approx(estimate.throughput, rel=0.05)
