"""Unit tests for machine configuration."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.uarch.config import (
    MachineConfig,
    PortSpec,
    little_inorder_core,
    skylake_gold_6126,
)


class TestDefaults:
    def test_skylake_defaults(self):
        m = skylake_gold_6126()
        assert m.pipeline_width == 4
        assert m.num_programmable_counters == 4
        assert len(m.ports) == 8
        assert m.frequency_ghz == pytest.approx(2.6)

    def test_little_core(self):
        m = little_inorder_core()
        assert m.pipeline_width == 2
        assert m.num_programmable_counters == 2
        assert len(m.ports) == 2

    def test_slots_per_cycle(self):
        assert skylake_gold_6126().slots_per_cycle == 4

    def test_cycles_per_second(self):
        assert skylake_gold_6126().cycles_per_second() == pytest.approx(2.6e9)


class TestPortRouting:
    def test_load_ports(self):
        m = skylake_gold_6126()
        names = [p.name for p in m.ports_for("load")]
        assert names == ["p2", "p3"]

    def test_every_class_routed(self):
        m = skylake_gold_6126()
        for uop_class in ("alu", "fp", "div", "branch", "load", "store_data",
                          "store_addr", "mul", "shuffle"):
            assert m.ports_for(uop_class)

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigError):
            skylake_gold_6126().ports_for("teleport")


class TestValidation:
    def test_zero_width_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(pipeline_width=0)

    def test_empty_ports_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(ports=())

    def test_nonpositive_fetch_width_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(dsb_width=0.0)

    def test_zero_counters_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_programmable_counters=0)

    def test_non_increasing_latencies_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(l2_latency=3.0)  # below the 4-cycle L1

    def test_zero_mshr_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(max_outstanding_misses=0)

    def test_config_is_frozen(self):
        m = skylake_gold_6126()
        with pytest.raises(dataclasses.FrozenInstanceError):
            m.pipeline_width = 8

    def test_port_spec_holds_classes(self):
        p = PortSpec("p9", frozenset({"alu"}))
        assert "alu" in p.uop_classes
