"""Tests for the execution runtime: parallel fan-out + experiment cache."""

from __future__ import annotations

import json

import pytest

from repro.core import SpireModel
from repro.errors import ConfigError
from repro.pipeline import (
    ExperimentConfig,
    cached_experiment,
    clear_caches,
    run_experiment,
)
from repro.runtime import (
    ExecutionPlan,
    ExperimentCache,
    ParallelRunner,
    experiment_cache_key,
    resolve_jobs,
)
from repro.uarch import skylake_gold_6126
from repro.uarch.config import MachineConfig, little_inorder_core

TINY = ExperimentConfig(train_windows=48, test_windows=24)


def _signature(result) -> dict:
    """Measured IPCs, TMA categories and full analyses for every workload."""
    runs = {**result.training_runs, **result.testing_runs}
    out = {
        name: (run.measured_ipc, run.table1_category) for name, run in runs.items()
    }
    for name in result.testing_runs:
        report = result.analyze(name)
        out[f"analysis:{name}"] = (
            report.measured_throughput,
            report.estimated_throughput,
            tuple((e.metric, e.estimate) for e in report.ranking),
        )
    return out


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_caches()
    yield
    clear_caches()


class TestParallelDeterminism:
    def test_parallel_equals_serial(self):
        serial = run_experiment(TINY, jobs=1)
        parallel = run_experiment(TINY, jobs=4)
        assert _signature(serial) == _signature(parallel)

    def test_runner_preserves_plan_order(self):
        plan = ExecutionPlan.for_experiment(TINY, skylake_gold_6126())
        runs = ParallelRunner(jobs=2).run(plan)
        assert [r.workload.name for r in runs] == [t.name for t in plan.tasks]

    def test_parallel_metric_fitting_matches_serial(self):
        pooled = run_experiment(TINY).training_samples
        serial = SpireModel.train(pooled)
        # threshold 0 forces the process-pool path even on tiny data
        parallel = SpireModel.train(pooled, jobs=2, parallel_threshold=0)
        assert serial.metrics == parallel.metrics
        for metric in serial.metrics:
            a, b = serial.roofline(metric), parallel.roofline(metric)
            assert a.function.to_dict() == b.function.to_dict()
            assert a.training_points == b.training_points

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ConfigError):
            resolve_jobs(-1)


class TestExperimentCache:
    def test_round_trip_is_equal(self, tmp_path):
        fresh = run_experiment(TINY, cache=tmp_path)
        loaded = run_experiment(TINY, cache=tmp_path)
        assert fresh is not loaded
        assert _signature(fresh) == _signature(loaded)
        assert fresh.machine == loaded.machine
        assert fresh.model.metrics == loaded.model.metrics
        for metric in fresh.model.metrics:
            a = fresh.model.roofline(metric)
            b = loaded.model.roofline(metric)
            assert a.function.to_dict() == b.function.to_dict()
            assert a.training_points == b.training_points
        assert len(fresh.training_samples) == len(loaded.training_samples)

    def test_corrupted_entry_resimulates(self, tmp_path):
        fresh = run_experiment(TINY, cache=tmp_path)
        cache = ExperimentCache(tmp_path)
        key = experiment_cache_key(TINY, skylake_gold_6126())
        assert cache.has(key)
        cache.entry_path(key).write_text("{not json", encoding="utf-8")
        recovered = run_experiment(TINY, cache=tmp_path)
        assert _signature(recovered) == _signature(fresh)
        # The re-simulated result was stored back as a valid entry.
        assert cache.load(key) is not None

    def test_wrong_format_entry_is_a_miss(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        key = experiment_cache_key(TINY, skylake_gold_6126())
        cache.directory.mkdir(parents=True, exist_ok=True)
        cache.entry_path(key).write_text(
            json.dumps({"format": "something-else/9"}), encoding="utf-8"
        )
        assert cache.load(key) is None
        assert not cache.has(key)  # discarded

    def test_key_covers_all_inputs(self):
        machine = skylake_gold_6126()
        base = experiment_cache_key(TINY, machine)
        assert experiment_cache_key(TINY, machine) == base
        assert experiment_cache_key(
            ExperimentConfig(train_windows=48, test_windows=24, seed=7), machine
        ) != base
        assert experiment_cache_key(TINY, little_inorder_core()) != base
        from repro.core import TrainOptions

        assert experiment_cache_key(
            TINY, machine, TrainOptions(min_samples_per_metric=3)
        ) != base

    def test_clear(self, tmp_path):
        run_experiment(TINY, cache=tmp_path)
        cache = ExperimentCache(tmp_path)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestCachedExperiment:
    def test_memo_identity(self):
        a = cached_experiment(TINY)
        assert cached_experiment(TINY) is a

    def test_memo_distinguishes_machine(self):
        # The old lru_cache keyed only on ExperimentConfig and silently
        # returned the default-machine result for any machine.
        a = cached_experiment(TINY)
        b = cached_experiment(TINY, machine=little_inorder_core())
        assert a is not b
        assert b.machine.name == "little-inorder"

    def test_clear_caches_drops_memo(self):
        a = cached_experiment(TINY)
        clear_caches()
        assert cached_experiment(TINY) is not a

    def test_disk_backed_memo_shares_across_processes(self, tmp_path):
        cached_experiment(TINY, cache_dir=tmp_path)
        # a "new process": empty memo, same disk cache
        clear_caches()
        reloaded = cached_experiment(TINY, cache_dir=tmp_path)
        assert _signature(reloaded) == _signature(cached_experiment(TINY))


def _rival_store(cache_dir: str, done: "object") -> None:
    """Child-process worker: miss the cache, simulate, store the entry."""
    import repro.pipeline as pipeline

    pipeline.clear_caches()  # forked memo would defeat the point
    pipeline.run_experiment(TINY, cache=cache_dir)
    done.put("stored")


class TestConcurrentCacheWrites:
    def test_two_processes_race_on_one_key(self, tmp_path):
        # Both processes miss, both simulate, both store the same key via
        # the atomic tempfile+rename path: one rename wins, neither fails,
        # and the surviving entry is complete and loadable.
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        done = ctx.Queue()
        workers = [
            ctx.Process(target=_rival_store, args=(str(tmp_path), done))
            for _ in range(2)
        ]
        for p in workers:
            p.start()
        for p in workers:
            p.join(timeout=120)
        assert all(p.exitcode == 0 for p in workers)
        assert done.get(timeout=5) == "stored"
        assert done.get(timeout=5) == "stored"

        cache = ExperimentCache(tmp_path)
        assert len(cache) == 1
        key = experiment_cache_key(TINY, skylake_gold_6126())
        loaded = cache.load(key)
        assert loaded is not None
        assert _signature(loaded) == _signature(run_experiment(TINY))
        # No leaked temp files from the losing writer.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_threaded_store_hammer_never_corrupts(self, tmp_path):
        # Many rename races on one key: a reader must never observe a
        # truncated or partially written entry.
        from concurrent.futures import ThreadPoolExecutor

        result = run_experiment(TINY)
        cache = ExperimentCache(tmp_path)
        key = experiment_cache_key(TINY, skylake_gold_6126())

        def store_once(_):
            cache.store(key, result)
            payload = json.loads(cache.entry_path(key).read_text())
            return payload["format"]

        with ThreadPoolExecutor(max_workers=8) as pool:
            formats = list(pool.map(store_once, range(16)))
        assert set(formats) == {"spire-expcache/1"}
        assert cache.load(key) is not None


class TestCacheLRUPruning:
    def _aged_entries(self, cache, result, count):
        """Store ``count`` entries with strictly increasing mtimes."""
        import os
        import time

        base = time.time() - 1000
        for i in range(count):
            path = cache.store(f"key{i:02d}", result)
            os.utime(path, (base + i, base + i))

    def test_store_evicts_oldest_beyond_bound(self, tmp_path):
        result = run_experiment(TINY)
        cache = ExperimentCache(tmp_path, max_entries=2)
        self._aged_entries(cache, result, 2)
        cache.store("key99", result)
        assert cache.keys() == ["key01", "key99"]  # key00 was oldest

    def test_load_refreshes_recency(self, tmp_path):
        import os
        import time

        result = run_experiment(TINY)
        cache = ExperimentCache(tmp_path, max_entries=2)
        self._aged_entries(cache, result, 2)
        # A hit on the older entry makes it most-recently-used...
        assert cache.load("key00") is not None
        os.utime(cache.entry_path("key00"), None)  # explicit "now"
        stale = time.time() - 500
        os.utime(cache.entry_path("key01"), (stale, stale))
        cache.store("key99", result)
        # ...so the *other* entry is the eviction victim.
        assert cache.keys() == ["key00", "key99"]

    def test_eviction_takes_checkpoints_along(self, tmp_path):
        result = run_experiment(TINY)
        run = next(iter(result.training_runs.values()))
        cache = ExperimentCache(tmp_path, max_entries=1)
        self._aged_entries(cache, result, 1)
        cache.store_checkpoint("key00", "graph500", run)
        cache.store("key99", result)
        assert cache.keys() == ["key99"]
        assert cache.checkpoint_names("key00") == []

    def test_unlimited_by_default(self, tmp_path):
        result = run_experiment(TINY)
        cache = ExperimentCache(tmp_path)
        assert cache.max_entries is None
        self._aged_entries(cache, result, 3)
        assert len(cache) == 3

    def test_env_override(self, tmp_path, monkeypatch):
        from repro.runtime import CACHE_MAX_ENTRIES_ENV

        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV, "1")
        assert ExperimentCache(tmp_path).max_entries == 1
        # Explicit argument beats the environment.
        assert ExperimentCache(tmp_path, max_entries=5).max_entries == 5
        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV, "0")
        assert ExperimentCache(tmp_path).max_entries is None
        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV, "a-lot")
        assert ExperimentCache(tmp_path).max_entries is None


class TestCheckpoints:
    def test_round_trip(self, tmp_path):
        result = run_experiment(TINY)
        cache = ExperimentCache(tmp_path)
        key = experiment_cache_key(TINY, skylake_gold_6126())
        name, run = next(iter(result.training_runs.items()))
        cache.store_checkpoint(key, name, run)
        assert cache.checkpoint_names(key) == [name]
        restored = cache.load_checkpoints(key)[name]
        assert restored.workload == run.workload
        assert restored.measured_ipc == run.measured_ipc
        assert restored.collection.samples.to_records() == \
            run.collection.samples.to_records()
        assert restored.tma.fractions == run.tma.fractions

    def test_discard(self, tmp_path):
        result = run_experiment(TINY)
        cache = ExperimentCache(tmp_path)
        name, run = next(iter(result.training_runs.items()))
        cache.store_checkpoint("k", name, run)
        assert cache.discard_checkpoints("k") == 1
        assert cache.checkpoint_names("k") == []
        assert not cache.checkpoint_dir("k").exists()


class TestMachineConfigSerialization:
    @pytest.mark.parametrize("factory", [skylake_gold_6126, little_inorder_core])
    def test_round_trip(self, factory):
        machine = factory()
        assert MachineConfig.from_dict(machine.to_dict()) == machine

    def test_dict_is_json_stable(self):
        machine = skylake_gold_6126()
        a = json.dumps(machine.to_dict(), sort_keys=True)
        b = json.dumps(MachineConfig.from_dict(machine.to_dict()).to_dict(),
                       sort_keys=True)
        assert a == b
