"""Unit tests for the bottleneck analysis report."""

import pytest

from repro.core.analysis import (
    AnalysisReport,
    MetricEstimate,
    rank_agreement,
    summarize_agreement,
)
from repro.errors import EstimationError


def report(estimates, areas=None, measured=2.0):
    ranking = [
        MetricEstimate(metric=name, estimate=value)
        for name, value in sorted(estimates.items(), key=lambda kv: kv[1])
    ]
    return AnalysisReport(
        workload="wl",
        measured_throughput=measured,
        estimated_throughput=ranking[0].estimate,
        ranking=ranking,
        metric_areas=areas or {},
    )


class TestTopAndPool:
    def test_top_respects_count(self):
        r = report({"a": 1.0, "b": 2.0, "c": 3.0})
        assert [e.metric for e in r.top(2)] == ["a", "b"]

    def test_top_defaults_to_top_k(self):
        r = report({f"m{i}": float(i) for i in range(15)})
        assert len(r.top()) == 10

    def test_pool_includes_within_slack(self):
        r = report({"a": 1.0, "b": 1.1, "c": 2.0})
        pool = [e.metric for e in r.bottleneck_pool(slack=0.15)]
        assert pool == ["a", "b"]

    def test_pool_always_has_minimum(self):
        r = report({"a": 1.0, "b": 5.0})
        assert [e.metric for e in r.bottleneck_pool(slack=0.0)] == ["a"]

    def test_pool_negative_slack_rejected(self):
        r = report({"a": 1.0})
        with pytest.raises(EstimationError):
            r.bottleneck_pool(slack=-0.1)

    def test_pool_empty_ranking_rejected(self):
        r = AnalysisReport(
            workload="wl",
            measured_throughput=1.0,
            estimated_throughput=1.0,
            ranking=[],
        )
        with pytest.raises(EstimationError):
            r.bottleneck_pool()


class TestAreas:
    def test_area_votes(self):
        r = report(
            {"a": 1.0, "b": 1.1, "c": 1.2},
            areas={"a": "Core", "b": "Core", "c": "Memory"},
        )
        votes = r.area_votes(3)
        assert votes["Core"] == 2
        assert votes["Memory"] == 1

    def test_dominant_area(self):
        r = report(
            {"a": 1.0, "b": 1.1, "c": 1.2},
            areas={"a": "Core", "b": "Core", "c": "Memory"},
        )
        assert r.dominant_area(3) == "Core"

    def test_dominant_area_tie_breaks_by_rank(self):
        r = report(
            {"a": 1.0, "b": 1.1},
            areas={"a": "Memory", "b": "Core"},
        )
        assert r.dominant_area(2) == "Memory"

    def test_dominant_area_ignores_unmapped(self):
        r = report({"a": 1.0, "b": 1.1}, areas={"b": "Core"})
        assert r.dominant_area(2) == "Core"

    def test_dominant_area_all_unmapped(self):
        r = report({"a": 1.0})
        assert r.dominant_area(1) == "?"


class TestScalarsAndRender:
    def test_estimation_ratio(self):
        r = report({"a": 1.0}, measured=2.0)
        assert r.estimation_ratio == pytest.approx(0.5)

    def test_estimation_ratio_zero_measured(self):
        r = report({"a": 1.0}, measured=0.0)
        with pytest.raises(EstimationError):
            _ = r.estimation_ratio

    def test_render_contains_metrics_and_measured(self):
        r = report({"metric_one": 1.0}, areas={"metric_one": "Core"})
        text = r.render()
        assert "metric_one" in text
        assert "Core" in text
        assert "2.000" in text


class TestAgreement:
    def test_rank_agreement(self):
        assert rank_agreement(["Core", "Core", "Memory"], "Core") == pytest.approx(
            2 / 3
        )

    def test_rank_agreement_top_k(self):
        assert rank_agreement(["Core", "Memory"], "Core", top_k=1) == 1.0

    def test_rank_agreement_empty(self):
        with pytest.raises(EstimationError):
            rank_agreement([], "Core")

    def test_summarize_agreement(self):
        reports = {
            "wl": report(
                {"a": 1.0, "b": 1.1},
                areas={"a": "Core", "b": "Core"},
            )
        }
        rows = summarize_agreement(reports, {"wl": "Core"}, top_k=2)
        assert rows[0]["dominant_match"] is True
        assert rows[0]["top_k_area_fraction"] == 1.0

    def test_summarize_agreement_unknown_baseline(self):
        reports = {"wl": report({"a": 1.0}, areas={"a": "Core"})}
        rows = summarize_agreement(reports, {}, top_k=1)
        assert rows[0]["baseline_category"] == "?"
        assert rows[0]["dominant_match"] is False
