"""Unit tests for the ML-importance baselines (paper §VI-B)."""

import random

import numpy as np
import pytest

from repro.baselines.regression import (
    GradientBoostingImportance,
    RidgeImportance,
    build_feature_matrix,
)
from repro.core.sample import Sample, SampleSet
from repro.errors import DataError


def rectangular_samples(rng, periods=60):
    """Two metrics sampled every period; 'stalls' drives throughput."""
    samples = SampleSet()
    for _ in range(periods):
        stall_rate = rng.uniform(0.0, 0.5)
        noise_rate = rng.uniform(0.0, 0.5)
        time = 1000.0
        ipc = 3.0 - 4.0 * stall_rate
        samples.add(Sample("stalls", time, ipc * time, stall_rate * time))
        samples.add(Sample("noise", time, ipc * time, noise_rate * time))
    return samples


class TestFeatureMatrix:
    def test_shapes(self, rng):
        samples = rectangular_samples(rng)
        features, target, metrics = build_feature_matrix(samples)
        assert features.shape == (60, 2)
        assert target.shape == (60,)
        assert metrics == ["noise", "stalls"]

    def test_values_are_rates(self, rng):
        samples = SampleSet([Sample("m", 100.0, 200.0, 50.0)])
        features, target, _ = build_feature_matrix(samples)
        assert features[0, 0] == pytest.approx(0.5)
        assert target[0] == pytest.approx(2.0)

    def test_ragged_collection_rejected(self):
        samples = SampleSet(
            [
                Sample("a", 1.0, 1.0, 1.0),
                Sample("a", 1.0, 1.0, 1.0),
                Sample("b", 1.0, 1.0, 1.0),
            ]
        )
        with pytest.raises(DataError, match="rectangular"):
            build_feature_matrix(samples)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            build_feature_matrix(SampleSet())


class TestRidge:
    def test_finds_true_driver(self, rng):
        result = RidgeImportance().fit(rectangular_samples(rng))
        assert result.top(1) == ["stalls"]
        assert result.r_squared > 0.9

    def test_ranked_descending(self, rng):
        result = RidgeImportance().fit(rectangular_samples(rng))
        values = [v for _, v in result.ranked()]
        assert values == sorted(values, reverse=True)

    def test_negative_alpha_rejected(self):
        with pytest.raises(DataError):
            RidgeImportance(alpha=-1.0)

    def test_constant_feature_handled(self):
        samples = SampleSet()
        for i in range(20):
            t = 100.0
            samples.add(Sample("const", t, (1.0 + i * 0.1) * t, 5.0))
            samples.add(Sample("varying", t, (1.0 + i * 0.1) * t, i * 1.0))
        result = RidgeImportance().fit(samples)
        assert result.top(1) == ["varying"]


class TestGradientBoosting:
    def test_finds_true_driver(self, rng):
        result = GradientBoostingImportance(n_rounds=40).fit(
            rectangular_samples(rng)
        )
        assert result.top(1) == ["stalls"]
        assert result.r_squared > 0.5

    def test_importances_non_negative(self, rng):
        result = GradientBoostingImportance().fit(rectangular_samples(rng))
        assert np.all(result.importances >= 0)

    def test_parameter_validation(self):
        with pytest.raises(DataError):
            GradientBoostingImportance(n_rounds=0)
        with pytest.raises(DataError):
            GradientBoostingImportance(learning_rate=0.0)

    def test_prefers_broad_proxy_over_cause(self):
        """The paper's critique: regressors lean on a broad stall count.

        Two causes (icache misses, dcache misses) each explain part of the
        slowdown; a 'total stalls' metric equals their combined effect.
        The regressor ranks the proxy first — losing causal information —
        which is exactly what SPIRE's independent per-metric fits avoid.
        """
        rng = random.Random(0)
        samples = SampleSet()
        for _ in range(80):
            icache = rng.uniform(0.0, 0.2)
            dcache = rng.uniform(0.0, 0.2)
            total = icache + dcache
            time = 1000.0
            ipc = 3.0 - 5.0 * total + rng.gauss(0.0, 0.01)
            ipc = max(0.1, ipc)
            samples.add(Sample("icache_miss", time, ipc * time, icache * time))
            samples.add(Sample("dcache_miss", time, ipc * time, dcache * time))
            samples.add(Sample("total_stalls", time, ipc * time, total * time))
        result = GradientBoostingImportance(n_rounds=50).fit(samples)
        assert result.top(1) == ["total_stalls"]
