"""Unit tests for the classic roofline baseline (paper Fig. 2)."""

import pytest

from repro.baselines.classic_roofline import (
    Ceiling,
    ClassicRoofline,
    RooflinePoint,
)
from repro.errors import ConfigError
from repro.uarch import skylake_gold_6126


@pytest.fixture
def roofline():
    return ClassicRoofline(
        pi=100.0,
        beta=10.0,
        ceilings=(
            Ceiling("scalar", "compute", 25.0),
            Ceiling("dram", "memory", 4.0),
        ),
    )


class TestAttainable:
    def test_memory_side(self, roofline):
        assert roofline.attainable(0.5) == pytest.approx(5.0)

    def test_compute_side(self, roofline):
        assert roofline.attainable(50.0) == pytest.approx(100.0)

    def test_ridge_point(self, roofline):
        assert roofline.ridge_point == pytest.approx(10.0)
        assert roofline.attainable(10.0) == pytest.approx(100.0)

    def test_compute_ceiling_caps(self, roofline):
        ceiling = roofline.ceilings[0]
        assert roofline.attainable(50.0, ceiling) == pytest.approx(25.0)

    def test_memory_ceiling_caps(self, roofline):
        ceiling = roofline.ceilings[1]
        assert roofline.attainable(0.5, ceiling) == pytest.approx(2.0)

    def test_negative_intensity_rejected(self, roofline):
        with pytest.raises(ConfigError):
            roofline.attainable(-1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            ClassicRoofline(pi=0.0, beta=1.0)
        with pytest.raises(ConfigError):
            Ceiling("x", "temporal", 1.0)
        with pytest.raises(ConfigError):
            Ceiling("x", "compute", -1.0)


class TestClassification:
    def test_memory_bound(self, roofline):
        app = RooflinePoint("A", intensity=1.0, throughput=5.0)
        assert roofline.classify(app) == "memory-bound"

    def test_compute_bound(self, roofline):
        app = RooflinePoint("B", intensity=50.0, throughput=20.0)
        assert roofline.classify(app) == "compute-bound"

    def test_binding_ceiling_scalar(self, roofline):
        app = RooflinePoint("B", intensity=50.0, throughput=20.0)
        assert roofline.binding_ceiling(app) == "scalar"

    def test_binding_ceiling_peak(self, roofline):
        app = RooflinePoint("B", intensity=50.0, throughput=60.0)
        assert roofline.binding_ceiling(app) == "peak"

    def test_binding_ceiling_dram(self, roofline):
        app = RooflinePoint("A", intensity=1.0, throughput=3.0)
        assert roofline.binding_ceiling(app) == "dram"

    def test_impossible_point_rejected(self, roofline):
        app = RooflinePoint("X", intensity=1.0, throughput=50.0)
        with pytest.raises(ConfigError):
            roofline.binding_ceiling(app)

    def test_efficiency(self, roofline):
        app = RooflinePoint("A", intensity=1.0, throughput=5.0)
        assert roofline.efficiency(app) == pytest.approx(0.5)


class TestSeriesAndMachine:
    def test_series_shape(self, roofline):
        series = roofline.series([0.1, 1.0, 10.0, 100.0])
        assert len(series) == 4
        values = [v for _, v in series]
        assert values == sorted(values)

    def test_from_machine_ceilings(self):
        roofline = ClassicRoofline.from_machine(skylake_gold_6126())
        names = {c.name for c in roofline.ceilings}
        assert names == {"scalar", "dram"}
        assert roofline.pi > 0
        # The DRAM ceiling must sit below the cache-bandwidth roof.
        dram = next(c for c in roofline.ceilings if c.name == "dram")
        assert dram.value < roofline.beta
