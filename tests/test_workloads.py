"""Unit tests for the workload abstraction and suite."""

import random

import pytest

from repro.errors import ConfigError
from repro.uarch.spec import WindowSpec
from repro.workloads import (
    Phase,
    Workload,
    all_workloads,
    random_workload,
    workload_by_name,
)
from repro.workloads import testing_suite as the_testing_suite
from repro.workloads import training_suite as the_training_suite
from repro.workloads.generator import random_spec


class TestWorkload:
    @pytest.fixture
    def two_phase(self):
        return Workload(
            name="w",
            configuration="cfg",
            expected_bottleneck="Memory",
            phases=(
                Phase(WindowSpec(frac_loads=0.4), weight=3.0),
                Phase(WindowSpec(frac_loads=0.1), weight=1.0),
            ),
            pressure_amplitude=0.3,
        )

    def test_label(self, two_phase):
        assert two_phase.label == "w (cfg)"

    def test_phase_blocks_proportional_to_weight(self, two_phase):
        assert two_phase.phase_at(0.0).spec.frac_loads == 0.4
        assert two_phase.phase_at(0.5).spec.frac_loads == 0.4
        assert two_phase.phase_at(0.9).spec.frac_loads == 0.1
        assert two_phase.phase_at(1.0).spec.frac_loads == 0.1

    def test_phase_at_range_checked(self, two_phase):
        with pytest.raises(ConfigError):
            two_phase.phase_at(1.5)

    def test_pressure_oscillates_around_one(self, two_phase):
        values = [two_phase.pressure_at(i / 100) for i in range(101)]
        assert min(values) < 1.0 < max(values)
        assert all(abs(v - 1.0) <= two_phase.pressure_amplitude + 1e-9 for v in values)

    def test_specs_materialization(self, two_phase):
        specs = two_phase.specs(n_windows=8, window_instructions=1234)
        assert len(specs) == 8
        assert all(s.instructions == 1234 for s in specs)

    def test_specs_require_windows(self, two_phase):
        with pytest.raises(ConfigError):
            two_phase.specs(0, 100)

    def test_no_phases_rejected(self):
        with pytest.raises(ConfigError):
            Workload("w", "c", "Core", phases=())

    def test_bad_role_rejected(self):
        with pytest.raises(ConfigError):
            Workload(
                "w", "c", "Core", phases=(Phase(WindowSpec()),), role="other"
            )

    def test_bad_amplitude_rejected(self):
        with pytest.raises(ConfigError):
            Workload(
                "w", "c", "Core", phases=(Phase(WindowSpec()),),
                pressure_amplitude=1.0,
            )

    def test_zero_weight_phase_rejected(self):
        with pytest.raises(ConfigError):
            Phase(WindowSpec(), weight=0.0)


class TestSuite:
    def test_counts_match_paper(self):
        assert len(the_training_suite()) == 23
        assert len(the_testing_suite()) == 4
        assert len(all_workloads()) == 27

    def test_roles(self):
        assert all(w.role == "training" for w in the_training_suite())
        assert all(w.role == "testing" for w in the_testing_suite())

    def test_unique_names(self):
        names = [w.name for w in all_workloads()]
        assert len(set(names)) == len(names)

    def test_test_workloads_cover_four_categories(self):
        categories = {w.expected_bottleneck for w in the_testing_suite()}
        assert categories == {"Front-End", "Bad Speculation", "Memory", "Core"}

    def test_training_covers_all_categories(self):
        categories = {w.expected_bottleneck for w in the_training_suite()}
        assert {"Front-End", "Bad Speculation", "Memory", "Core"} <= categories

    def test_lookup_by_name(self):
        assert workload_by_name("tnn").role == "testing"

    def test_lookup_unknown(self):
        with pytest.raises(ConfigError):
            workload_by_name("doom-eternal")

    def test_tnn_has_paper_dsb_coverage(self):
        # VTune reported the DSB supplying only 5.4% of uops for TNN.
        tnn = workload_by_name("tnn")
        assert tnn.phases[0].spec.dsb_coverage == pytest.approx(0.054)

    def test_all_specs_materialize(self):
        for workload in all_workloads():
            specs = workload.specs(10, 1000)
            assert len(specs) == 10


class TestGenerator:
    def test_random_spec_valid(self):
        rng = random.Random(0)
        for _ in range(50):
            random_spec(rng)  # constructor validates

    def test_random_workload_valid(self):
        rng = random.Random(0)
        for _ in range(20):
            w = random_workload(rng)
            assert 1 <= len(w.phases) <= 3
            w.specs(5, 1000)
