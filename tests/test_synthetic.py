"""Unit tests for the synthetic sample generators and ground-truth error."""

import random

import pytest

from repro.core.roofline import fit_metric_roofline
from repro.core.synthetic import (
    ground_truth_error,
    negative_metric_curve,
    plateau_curve,
    positive_metric_curve,
    synthetic_samples,
)
from repro.errors import DataError


class TestCurves:
    def test_negative_curve_rises_and_saturates(self):
        curve = negative_metric_curve(peak=4.0, knee=6.0)
        assert curve(1.0) < curve(10.0) < curve(100.0) < 4.0
        assert curve(1e6) == pytest.approx(4.0, rel=1e-4)

    def test_positive_curve_falls(self):
        curve = positive_metric_curve(peak=4.0, knee=3.0)
        assert curve(1.0) > curve(10.0) > curve(100.0)
        assert curve(0.0) == pytest.approx(4.0)

    def test_plateau_curve_shape(self):
        curve = plateau_curve(peak=4.0, rise_knee=2.0, fall_start=50.0)
        assert curve(1.0) < curve(20.0)
        assert curve(200.0) < curve(50.0)

    def test_parameter_validation(self):
        with pytest.raises(DataError):
            negative_metric_curve(peak=0.0)
        with pytest.raises(DataError):
            positive_metric_curve(knee=-1.0)
        with pytest.raises(DataError):
            plateau_curve(rise_knee=5.0, fall_start=4.0)


class TestSyntheticSamples:
    def test_samples_respect_the_roof(self):
        curve = negative_metric_curve()
        samples = synthetic_samples("m", curve, count=200)
        for sample in samples:
            assert sample.throughput <= curve(sample.intensity) + 1e-9

    def test_count_and_metric(self):
        samples = synthetic_samples("metric_x", negative_metric_curve(), count=50)
        assert len(samples) == 50
        assert samples.metrics() == ["metric_x"]

    def test_intensity_range_respected(self):
        samples = synthetic_samples(
            "m", negative_metric_curve(), count=200,
            intensity_range=(2.0, 20.0),
        )
        for sample in samples:
            assert 2.0 - 1e-9 <= sample.intensity <= 20.0 + 1e-9

    def test_log_spacing_covers_decades(self):
        samples = synthetic_samples(
            "m", negative_metric_curve(), count=400,
            intensity_range=(0.1, 1000.0), rng=random.Random(1),
        )
        intensities = [s.intensity for s in samples]
        assert min(intensities) < 1.0
        assert max(intensities) > 100.0

    def test_deterministic_with_rng(self):
        a = synthetic_samples("m", negative_metric_curve(), rng=random.Random(5))
        b = synthetic_samples("m", negative_metric_curve(), rng=random.Random(5))
        assert a.to_records() == b.to_records()

    def test_validation(self):
        with pytest.raises(DataError):
            synthetic_samples("m", negative_metric_curve(), count=0)
        with pytest.raises(DataError):
            synthetic_samples(
                "m", negative_metric_curve(), intensity_range=(5.0, 2.0)
            )
        with pytest.raises(DataError):
            synthetic_samples(
                "m", negative_metric_curve(), efficiency_range=(0.0, 1.0)
            )


class TestGroundTruthError:
    def test_fit_converges_to_curve(self):
        curve = negative_metric_curve()
        rng = random.Random(2)
        small = fit_metric_roofline(
            synthetic_samples("m", curve, count=20, rng=rng,
                              efficiency_range=(0.9, 1.0))
        )
        large = fit_metric_roofline(
            synthetic_samples("m", curve, count=2000, rng=rng,
                              efficiency_range=(0.9, 1.0))
        )
        assert ground_truth_error(large, curve) <= ground_truth_error(small, curve)
        assert ground_truth_error(large, curve) < 0.15

    def test_positive_metric_fit_tracks_curve(self):
        curve = positive_metric_curve()
        roofline = fit_metric_roofline(
            synthetic_samples(
                "m", curve, count=1500, rng=random.Random(3),
                efficiency_range=(0.85, 1.0),
            )
        )
        assert ground_truth_error(roofline, curve) < 0.25

    def test_validation(self):
        curve = negative_metric_curve()
        roofline = fit_metric_roofline(
            synthetic_samples("m", curve, count=50, rng=random.Random(0))
        )
        with pytest.raises(DataError):
            ground_truth_error(roofline, curve, intensity_range=(5.0, 1.0))
        with pytest.raises(DataError):
            ground_truth_error(roofline, curve, points=1)
