"""Fault-tolerance tests: retries, timeouts, pool recovery, resume, faults.

These exercise the robustness layer end to end with the deterministic
fault-injection harness (:mod:`repro.runtime.faults`): injected crashes,
hangs and data corruption must be absorbed, reported and — crucially —
leave every unaffected workload bit-identical to a fault-free serial run.
"""

from __future__ import annotations

import math
import warnings

import pytest

from repro.core import SampleSanitizer, SpireModel, TrainOptions
from repro.core.sample import Sample, SampleSet
from repro.errors import ConfigError, DegradedDataWarning, SpireError
from repro.pipeline import (
    ExperimentConfig,
    clear_caches,
    run_experiment,
    run_experiment_with_report,
)
from repro.runtime import (
    ExperimentCache,
    FaultPlan,
    FaultSpec,
    RunnerOptions,
    experiment_cache_key,
)
from repro.uarch import skylake_gold_6126

TINY = ExperimentConfig(train_windows=48, test_windows=24)
#: Keep retry pauses out of the test clock.
FAST = dict(retries=2, runner_options=None)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(scope="module")
def baseline():
    """A fault-free serial run to compare degraded runs against."""
    return run_experiment(TINY)


def _ipc_signature(result) -> dict:
    runs = {**result.training_runs, **result.testing_runs}
    return {name: run.measured_ipc for name, run in runs.items()}


def _options(**kw) -> RunnerOptions:
    kw.setdefault("backoff_base", 0.0)  # no sleeping in tests
    return RunnerOptions(**kw)


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(workload="tnn", kind="meteor-strike")

    def test_two_runner_faults_on_one_workload_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(
                (
                    FaultSpec(workload="tnn", kind="crash"),
                    FaultSpec(workload="tnn", kind="hang"),
                )
            )

    def test_random_plan_is_deterministic(self):
        names = [f"w{i}" for i in range(27)]
        a = FaultPlan.random(names, seed=7, crashes=1, hangs=1, corrupt_samples=2)
        b = FaultPlan.random(names, seed=7, crashes=1, hangs=1, corrupt_samples=2)
        assert a == b
        c = FaultPlan.random(names, seed=8, crashes=1, hangs=1, corrupt_samples=2)
        assert a != c

    def test_random_plan_rejects_oversubscription(self):
        with pytest.raises(ConfigError):
            FaultPlan.random(["a", "b"], crashes=2, hangs=1)


class TestRunnerOptionsValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError):
            RunnerOptions(failure_policy="shrug")

    def test_bad_timeout_rejected(self):
        with pytest.raises(ConfigError):
            RunnerOptions(task_timeout=0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError):
            RunnerOptions(retries=-1)

    def test_backoff_is_deterministic(self):
        opts = RunnerOptions(backoff_base=0.1, backoff_jitter=0.5)
        assert opts.backoff("tnn", 2) == opts.backoff("tnn", 2)
        assert opts.backoff("tnn", 2) != opts.backoff("graph500", 2)


class TestSerialResilience:
    def test_transient_crash_retried_in_process(self, baseline):
        plan = FaultPlan((FaultSpec(workload="graph500", kind="crash", times=1),))
        result, report = run_experiment_with_report(
            TINY, faults=plan, runner_options=_options()
        )
        assert report.ok
        outcomes = [a.outcome for a in report.task_attempts("graph500")]
        assert outcomes == ["crash", "ok"]
        assert _ipc_signature(result) == _ipc_signature(baseline)

    def test_persistent_crash_raises_by_default(self):
        plan = FaultPlan((FaultSpec(workload="graph500", kind="crash", times=99),))
        with pytest.raises(SpireError, match="graph500"):
            run_experiment_with_report(
                TINY, faults=plan, runner_options=_options(retries=1)
            )

    def test_skip_policy_trains_on_survivors(self, baseline):
        plan = FaultPlan((FaultSpec(workload="graph500", kind="crash", times=99),))
        with pytest.warns(DegradedDataWarning, match="graph500"):
            result, report = run_experiment_with_report(
                TINY,
                faults=plan,
                runner_options=_options(retries=1, failure_policy="skip"),
            )
        assert report.failures.keys() == {"graph500"}
        assert report.skipped == ["graph500"]
        assert "graph500" not in result.training_runs
        base = _ipc_signature(baseline)
        for name, ipc in _ipc_signature(result).items():
            assert ipc == base[name]

    def test_in_process_hang_times_out_when_deadline_set(self, baseline):
        plan = FaultPlan((FaultSpec(workload="graph500", kind="hang", times=1),))
        result, report = run_experiment_with_report(
            TINY, faults=plan, runner_options=_options(task_timeout=0.5)
        )
        assert report.ok
        outcomes = [a.outcome for a in report.task_attempts("graph500")]
        assert outcomes == ["timeout", "ok"]
        assert _ipc_signature(result) == _ipc_signature(baseline)


class TestPoolResilience:
    def test_worker_crash_rebuilds_pool(self, baseline):
        plan = FaultPlan((FaultSpec(workload="graph500", kind="crash", times=1),))
        result, report = run_experiment_with_report(
            TINY, jobs=4, faults=plan, runner_options=_options()
        )
        assert report.ok
        assert report.pool_rebuilds >= 1
        # The whole pool died: siblings record a pool-broken attempt that
        # does not count against their retry budget.
        assert any(a.outcome == "pool-broken" for a in report.attempts)
        assert _ipc_signature(result) == _ipc_signature(baseline)

    def test_hang_hits_task_timeout_then_retry_succeeds(self, baseline):
        plan = FaultPlan(
            (FaultSpec(workload="graph500", kind="hang", times=1,
                       hang_seconds=3.0),)
        )
        result, report = run_experiment_with_report(
            TINY, jobs=4, faults=plan, runner_options=_options(task_timeout=0.75)
        )
        assert report.ok
        attempts = report.task_attempts("graph500")
        assert [a.outcome for a in attempts] == ["timeout", "ok"]
        assert attempts[0].duration >= 0.75
        assert _ipc_signature(result) == _ipc_signature(baseline)

    def test_persistent_crash_exhausts_rebuilds_then_serial(self, baseline):
        # The pool dies max_pool_rebuilds+1 times; the runner falls back to
        # in-process execution where the crash is attributable, burns the
        # retry budget and lands in `failures` under the skip policy.
        plan = FaultPlan((FaultSpec(workload="graph500", kind="crash", times=99),))
        with pytest.warns(DegradedDataWarning):
            result, report = run_experiment_with_report(
                TINY,
                jobs=4,
                faults=plan,
                runner_options=_options(
                    retries=1, failure_policy="skip", max_pool_rebuilds=1
                ),
            )
        assert report.failures.keys() == {"graph500"}
        assert report.pool_rebuilds == 2  # max_pool_rebuilds + the give-up
        base = _ipc_signature(baseline)
        for name, ipc in _ipc_signature(result).items():
            assert ipc == base[name]

    def test_acceptance_crash_hang_corrupt(self, baseline):
        """ISSUE 2 acceptance: 1 crash + 1 hang + 1 corrupt-sample out of 27,
        persistent, skip policy: the run completes, the report lists exactly
        the injected faults, and unaffected workloads are bit-identical to a
        fault-free serial run."""
        plan = FaultPlan(
            (
                FaultSpec(workload="graph500", kind="crash", times=99),
                FaultSpec(workload="qmcpack", kind="hang", times=99,
                          hang_seconds=2.0),
                FaultSpec(workload="tnn", kind="corrupt-sample", times=99,
                          sample_index=3),
            )
        )
        with pytest.warns(DegradedDataWarning):
            result, report = run_experiment_with_report(
                TINY,
                jobs=4,
                faults=plan,
                runner_options=_options(
                    retries=1,
                    failure_policy="skip",
                    task_timeout=0.75,
                    max_pool_rebuilds=1,
                ),
            )
        # Exactly the two runner-level faults fail terminally...
        assert sorted(report.failures) == ["graph500", "qmcpack"]
        # ...the corrupt-sample victim completes with quarantined data...
        tnn = result.testing_runs["tnn"]
        assert tnn.collection.quality is not None
        assert len(tnn.collection.quality.quarantined) == 1
        assert "NaN" in tnn.collection.quality.quarantined[0].reason
        # ...and every unaffected workload matches the fault-free run.
        base = _ipc_signature(baseline)
        for name, ipc in _ipc_signature(result).items():
            if name != "tnn":
                assert ipc == base[name], name
        faulted = set(report.faulted_tasks())
        assert faulted == {"graph500", "qmcpack"}


class TestCheckpointResume:
    def test_interrupted_run_resumes_from_checkpoints(self, baseline):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            plan = FaultPlan(
                (FaultSpec(workload="graph500", kind="crash", times=99),)
            )
            with pytest.raises(SpireError):
                run_experiment_with_report(
                    TINY, cache=tmp, faults=plan,
                    runner_options=_options(retries=0),
                )
            cache = ExperimentCache(tmp)
            key = experiment_cache_key(TINY, skylake_gold_6126())
            checkpointed = cache.checkpoint_names(key)
            assert checkpointed  # progress was persisted before the failure
            assert "graph500" not in checkpointed

            # The resumed run re-simulates ONLY the incomplete workloads.
            result, report = run_experiment_with_report(
                TINY, cache=tmp, resume=True, runner_options=_options()
            )
            assert report.ok
            assert sorted(report.checkpoint_hits) == sorted(checkpointed)
            executed = {a.task for a in report.attempts}
            assert executed == set(_ipc_signature(baseline)) - set(checkpointed)
            assert _ipc_signature(result) == _ipc_signature(baseline)
            # Success promotes the full entry and clears the checkpoints.
            assert cache.has(key)
            assert cache.checkpoint_names(key) == []

    def test_checkpoint_write_failure_degrades_gracefully(self, baseline):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            plan = FaultPlan(
                (FaultSpec(workload="tnn", kind="checkpoint-write-failure",
                           times=99),)
            )
            with pytest.warns(DegradedDataWarning, match="checkpoint"):
                result, report = run_experiment_with_report(
                    TINY, cache=tmp, faults=plan, runner_options=_options()
                )
            assert report.ok
            assert "tnn" in report.checkpoint_errors
            assert _ipc_signature(result) == _ipc_signature(baseline)

    def test_corrupted_checkpoint_is_resimulated(self, baseline):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            cache = ExperimentCache(tmp)
            key = experiment_cache_key(TINY, skylake_gold_6126())
            path = cache.checkpoint_dir(key) / "graph500.json"
            path.parent.mkdir(parents=True)
            path.write_text("{truncated", encoding="utf-8")
            result, report = run_experiment_with_report(
                TINY, cache=tmp, resume=True, runner_options=_options()
            )
            assert report.ok
            assert report.checkpoint_hits == []
            assert _ipc_signature(result) == _ipc_signature(baseline)


class TestCollectorDegradation:
    def test_corrupt_sample_quarantined_not_raised(self, baseline):
        plan = FaultPlan(
            (FaultSpec(workload="tnn", kind="corrupt-sample", times=99,
                       sample_index=0),)
        )
        result, report = run_experiment_with_report(
            TINY, faults=plan, runner_options=_options()
        )
        assert report.ok
        quality = result.testing_runs["tnn"].collection.quality
        assert len(quality.quarantined) == 1
        assert quality.quarantined[0].reason == "NaN metric_count"
        # One fewer sample than the clean run; everything else intact.
        clean = baseline.testing_runs["tnn"].collection
        assert len(result.testing_runs["tnn"].collection.samples) == \
            len(clean.samples) - 1

    def test_drop_metric_removes_samples_but_not_tma(self, baseline):
        plan = FaultPlan(
            (FaultSpec(workload="tnn", kind="drop-metric", times=99,
                       metric="idq.dsb_uops"),)
        )
        result, report = run_experiment_with_report(
            TINY, faults=plan, runner_options=_options()
        )
        assert report.ok
        collection = result.testing_runs["tnn"].collection
        assert "idq.dsb_uops" not in collection.samples.metrics()
        assert "idq.dsb_uops" in collection.quality.dropped_metrics
        # The full (un-multiplexed) counter view feeding TMA is unaffected.
        assert collection.full_counts["idq.dsb_uops"] == \
            baseline.testing_runs["tnn"].collection.full_counts["idq.dsb_uops"]


class TestSampleSanitizer:
    def test_quarantines_invalid_records(self):
        clean, report = SampleSanitizer().sanitize(
            [
                {"metric": "m", "time": 10.0, "work": 20.0, "metric_count": 2.0},
                {"metric": "m", "time": float("nan"), "work": 1.0,
                 "metric_count": 1.0},
                {"metric": "m", "time": 5.0, "work": -1.0, "metric_count": 1.0},
                {"metric": "m", "time": 5.0, "work": 1.0,
                 "metric_count": float("inf")},
                {"metric": "", "time": 5.0, "work": 1.0, "metric_count": 1.0},
            ]
        )
        assert len(clean) == 1
        assert report.kept == 1
        assert report.total == 5
        reasons = sorted(q.reason for q in report.quarantined)
        assert reasons == [
            "NaN time", "empty metric name", "infinite metric_count",
            "negative work",
        ]

    def test_metric_floor_drops_partial_metrics(self):
        samples = SampleSet(
            [Sample("rich", time=1.0, work=float(i), metric_count=1.0)
             for i in range(1, 6)]
            + [Sample("poor", time=1.0, work=1.0, metric_count=1.0)]
        )
        clean, report = SampleSanitizer(min_samples_per_metric=3).sanitize(samples)
        assert clean.metrics() == ["rich"]
        assert "poor" in report.dropped_metrics
        assert not report.ok

    def test_clean_input_passes_through(self):
        samples = SampleSet(
            [Sample("m", time=1.0, work=float(i), metric_count=1.0)
             for i in range(1, 4)]
        )
        clean, report = SampleSanitizer().sanitize(samples)
        assert report.ok
        assert len(clean) == 3
        assert report.summary() == "all 3 samples clean"


class TestTrainDegradation:
    def test_train_warns_on_dropped_metrics(self):
        samples = SampleSet(
            [Sample("rich", time=1.0, work=float(i), metric_count=1.0)
             for i in range(1, 10)]
            + [Sample("poor", time=1.0, work=1.0, metric_count=1.0)]
        )
        with pytest.warns(DegradedDataWarning, match="poor"):
            model = SpireModel.train(
                samples, TrainOptions(min_samples_per_metric=3)
            )
        assert "rich" in model
        assert "poor" not in model

    def test_train_fills_quality_report(self):
        from repro.core import QualityReport

        samples = [
            {"metric": "m", "time": 1.0, "work": float(i), "metric_count": 1.0}
            for i in range(1, 6)
        ] + [{"metric": "m", "time": float("nan"), "work": 1.0,
              "metric_count": 1.0}]
        quality = QualityReport()
        with pytest.warns(DegradedDataWarning):
            model = SpireModel.train(samples, quality=quality)
        assert "m" in model
        assert len(quality.quarantined) == 1
        assert quality.quarantined[0].reason == "NaN time"

    def test_train_jobs_minus_one_raises_config_error(self):
        samples = SampleSet(
            [Sample("m", time=1.0, work=float(i), metric_count=1.0)
             for i in range(1, 6)]
        )
        with pytest.raises(ConfigError, match="jobs"):
            SpireModel.train(samples, jobs=-1)

    def test_clean_training_emits_no_warning(self):
        samples = SampleSet(
            [Sample("m", time=1.0, work=float(i), metric_count=1.0)
             for i in range(1, 6)]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedDataWarning)
            model = SpireModel.train(samples)
        assert "m" in model


class TestQualityReportRoundTrip:
    def test_quality_survives_the_experiment_cache(self):
        import tempfile

        plan = FaultPlan(
            (FaultSpec(workload="tnn", kind="corrupt-sample", times=99),)
        )
        with tempfile.TemporaryDirectory() as tmp:
            run_experiment(TINY, cache=tmp, faults=plan)
            clear_caches()
            reloaded = run_experiment(TINY, cache=tmp, faults=plan)
        quality = reloaded.testing_runs["tnn"].collection.quality
        assert quality is not None
        assert len(quality.quarantined) == 1
        assert math.isnan(quality.quarantined[0].metric_count)  # not persisted
