"""Supervised serving: quotas, rollover, drain, crash recovery.

The robustness contracts under test:

- admission quotas are deterministic token buckets — a storm on one
  model yields clean 429s with an exact ``Retry-After`` and costs its
  neighbours nothing;
- ``MicroBatcher.drain`` flushes parked lanes instead of stranding them,
  and a stopped server answers queued requests with 503, never a hung
  keep-alive;
- hot rollover stages, verifies and canary-checks artifacts before the
  atomic swap; a corrupt artifact is quarantined and *never served*,
  while the old mapping keeps answering bit-identically;
- the registry loads each artifact once under concurrency
  (single-flight) and counts the waiters;
- the supervisor restarts crashed workers with deterministic backoff,
  marks flapping slots stale instead of restarting forever, and the
  survivors keep serving bit-identical responses throughout.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time

import pytest

from repro.core import SpireModel
from repro.core.columns import SampleArray
from repro.errors import ConfigError, ServeOverloadError, SpireError
from repro.guard.dispatch import GuardConfig, reset_guards
from repro.runtime.faults import (
    FAULT_KINDS,
    QUOTA_STORM,
    ROLLOVER_CORRUPT_ARTIFACT,
    SERVE_KINDS,
    WORKER_CRASH,
    WORKER_HANG,
    FaultPlan,
)
from repro.serve import (
    AdmissionController,
    MicroBatcher,
    ModelRegistry,
    QuotaPolicy,
    ServeConfig,
    SpireServer,
    TokenBucket,
    backoff_delay,
    pack_model,
)
from repro.serve.chaos import _http, train_chaos_model
from repro.serve.rollover import STAGING_DIRNAME
from repro.serve.supervisor import ServeSupervisor, SupervisorConfig

GUARD_ENV_PREFIXES = ("SPIRE_GUARD", "SPIRE_GUARDRAIL", "SPIRE_SCALAR_FALLBACK")

METRICS = [f"m.{i}" for i in range(3)]


@pytest.fixture(autouse=True)
def fresh_guards(monkeypatch):
    for name in list(os.environ):
        if name.startswith(GUARD_ENV_PREFIXES):
            monkeypatch.delenv(name, raising=False)
    reset_guards()
    yield
    reset_guards()


@pytest.fixture(scope="module")
def model() -> SpireModel:
    return train_chaos_model(METRICS, seed=7)


def _array_from_rows(rows) -> SampleArray:
    return SampleArray.from_lists(
        [r[0] for r in rows],
        [r[1] for r in rows],
        [r[2] for r in rows],
        [r[3] for r in rows],
    )


_ROWS = [("m.0", 1.0, 2.0, 1.0), ("m.1", 2.0, 6.0, 1.5)]


def _estimate_body(model_name: str) -> bytes:
    return json.dumps(
        {
            "model": model_name,
            "samples": [
                {"metric": m, "time": t, "work": w, "metric_count": c}
                for m, t, w, c in _ROWS
            ],
        }
    ).encode()


def _want_per_metric(model: SpireModel) -> dict:
    estimate = model.estimate(_array_from_rows(_ROWS).to_sample_set())
    return json.loads(json.dumps(estimate.per_metric))


# ---------------------------------------------------------------------------
# Quotas: deterministic token buckets
# ---------------------------------------------------------------------------


class TestQuotas:
    def test_policy_parse(self):
        assert QuotaPolicy.parse("5") == QuotaPolicy(rate=5.0)
        assert QuotaPolicy.parse("2.5:8") == QuotaPolicy(rate=2.5, burst=8.0)
        for bad in ("", "abc", "5:x", "0", "-1"):
            with pytest.raises(ConfigError):
                QuotaPolicy.parse(bad)

    def test_capacity_floor_is_one_request(self):
        assert QuotaPolicy(rate=1.0, burst=0.0).capacity == 1.0
        assert QuotaPolicy(rate=1.0, burst=6.0).capacity == 6.0

    def test_bucket_is_deterministic_under_fake_clock(self):
        now = [0.0]
        bucket = TokenBucket(
            QuotaPolicy(rate=2.0, burst=3.0), clock=lambda: now[0]
        )
        # A fresh bucket starts full: the whole burst admits instantly.
        assert [bucket.admit() for _ in range(3)] == [None, None, None]
        # Empty bucket: the delay is the exact time to the next token.
        assert bucket.admit() == pytest.approx(0.5)
        # Waiting exactly that long admits exactly one more request.
        now[0] += 0.5
        assert bucket.admit() is None
        assert bucket.admit() == pytest.approx(0.5)
        # Refill caps at the burst capacity, not beyond it.
        now[0] += 1e6
        assert bucket.level() == 3.0

    def test_admission_isolates_models(self):
        now = [0.0]
        controller = AdmissionController(
            policies={"hot": QuotaPolicy(rate=1.0)},
            clock=lambda: now[0],
        )
        controller.admit("hot")  # burst of one
        with pytest.raises(ServeOverloadError) as excinfo:
            controller.admit("hot")
        assert excinfo.value.quota
        assert excinfo.value.retry_after == pytest.approx(1.0)
        # No policy and no default: the neighbour is never refused.
        for _ in range(50):
            controller.admit("cold")
        snap = controller.snapshot()
        assert snap["policies"]["hot"]["rate"] == 1.0
        assert "hot" in snap["levels"]

    def test_default_policy_applies_to_unlisted_models(self):
        now = [0.0]
        controller = AdmissionController(
            default=QuotaPolicy(rate=1.0), clock=lambda: now[0]
        )
        controller.admit("anything")
        with pytest.raises(ServeOverloadError):
            controller.admit("anything")


# ---------------------------------------------------------------------------
# Supervisor arithmetic and fault-plan surface
# ---------------------------------------------------------------------------


class TestSupervisorConfig:
    def test_backoff_doubles_then_caps(self):
        config = SupervisorConfig(backoff_base=0.1, backoff_cap=2.0)
        delays = [backoff_delay(config, attempt) for attempt in range(8)]
        assert delays[:5] == [0.1, 0.2, 0.4, 0.8, 1.6]
        assert all(d == 2.0 for d in delays[5:])

    def test_validation(self):
        with pytest.raises(SpireError):
            SupervisorConfig(workers=0)
        with pytest.raises(SpireError):
            SupervisorConfig(heartbeat_timeout=0.0)


class TestServeFaultPlan:
    def test_serve_kinds_registered(self):
        for kind in (
            WORKER_CRASH,
            WORKER_HANG,
            ROLLOVER_CORRUPT_ARTIFACT,
            QUOTA_STORM,
        ):
            assert kind in FAULT_KINDS
            assert kind in SERVE_KINDS

    def test_random_plan_draws_serve_faults(self):
        plan = FaultPlan.random(
            ["w0", "w1"],
            seed=5,
            worker_crashes=1,
            worker_hangs=1,
            rollover_corruptions=1,
            quota_storms=1,
            serve_slots=4,
            serve_models=("alpha", "beta"),
        )
        serve = plan.serve_faults()
        assert sorted(s.kind for s in serve) == sorted(SERVE_KINDS)
        crash = next(s for s in serve if s.kind == WORKER_CRASH)
        assert crash.workload in {"0", "1", "2", "3"}
        storm = next(s for s in serve if s.kind == QUOTA_STORM)
        assert storm.workload in {"alpha", "beta"}
        assert storm.factor in {4.0, 8.0, 16.0}
        # Serve faults never leak into the experiment-runner surface.
        assert not (set(plan.injected_workloads()) & {"0", "1", "2", "3"})

    def test_same_seed_without_serve_counts_is_unchanged(self):
        # Adding the serve draws after the stream kinds keeps old seeds
        # bit-identical: a plan without serve faults must not shift.
        names = ["w0", "w1", "w2"]
        kwargs = dict(seed=11, crashes=1, hangs=1, corrupt_samples=1)
        before = FaultPlan.random(names, **kwargs)
        again = FaultPlan.random(names, **kwargs)
        assert [
            (s.kind, s.workload, s.times) for s in before.specs
        ] == [(s.kind, s.workload, s.times) for s in again.specs]
        assert not before.serve_faults()


# ---------------------------------------------------------------------------
# MicroBatcher drain and the stop-flush contract (satellite: no hung
# keep-alives on shutdown)
# ---------------------------------------------------------------------------


class TestBatcherDrain:
    def test_drain_flushes_parked_lanes(self, model):
        reset_guards(GuardConfig(check_rate=0))
        array = _array_from_rows(_ROWS)
        want = model.estimate(array.to_sample_set())

        async def drive():
            # A huge window: without drain these would sit parked.
            batcher = MicroBatcher(lambda _: model, max_batch=8, window=30.0)
            futures = [
                asyncio.ensure_future(batcher.submit("m", array))
                for _ in range(3)
            ]
            await asyncio.sleep(0.05)
            flushed = await batcher.drain()
            results = await asyncio.gather(*futures)
            return flushed, results

        flushed, results = asyncio.run(drive())
        assert flushed == 3
        for got in results:
            assert got.per_metric == want.per_metric

    def test_submit_after_drain_sheds(self, model):
        array = _array_from_rows(_ROWS)

        async def drive():
            batcher = MicroBatcher(lambda _: model, max_batch=8, window=30.0)
            await batcher.drain()
            with pytest.raises(ServeOverloadError) as excinfo:
                await batcher.submit("m", array)
            return excinfo.value

        error = asyncio.run(drive())
        assert error.shed

    def test_close_fails_queued_as_shed(self, model):
        array = _array_from_rows(_ROWS)

        async def drive():
            batcher = MicroBatcher(lambda _: model, max_batch=8, window=30.0)
            future = asyncio.ensure_future(batcher.submit("m", array))
            await asyncio.sleep(0.05)
            await batcher.close()
            with pytest.raises(ServeOverloadError) as excinfo:
                await future
            return excinfo.value

        error = asyncio.run(drive())
        assert error.shed  # maps to 503, not 429


# ---------------------------------------------------------------------------
# Registry: single-flight concurrent loads
# ---------------------------------------------------------------------------


class TestSingleFlight:
    def test_concurrent_get_loads_once(self, model, tmp_path, monkeypatch):
        import repro.serve.registry as registry_module

        registry = ModelRegistry(tmp_path / "store", capacity=4)
        registry.install("demo", model)
        registry.evict("demo")

        real_map = registry_module.map_model
        entered = threading.Event()

        def slow_map(path):
            entered.set()
            time.sleep(0.2)  # hold the load long enough for waiters to pile up
            return real_map(path)

        monkeypatch.setattr(registry_module, "map_model", slow_map)
        results, errors = [], []

        def hit():
            try:
                results.append(registry.get("demo"))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        registry.close()

        assert not errors
        assert len(results) == 4
        snap = registry.snapshot()
        assert snap["loads"] == 1  # one map_model for four callers
        assert snap["single_flight_waits"] >= 1


# ---------------------------------------------------------------------------
# Server: stop-flush, graceful drain, rollover, quarantine, quotas
# ---------------------------------------------------------------------------


async def _async_http(port, method, path, body=b"", content_type="application/json"):
    return await asyncio.to_thread(
        _http, port, method, path, body, content_type
    )


def _server(tmp_path, model, **kwargs) -> SpireServer:
    kwargs.setdefault("port", 0)
    kwargs.setdefault("store_dir", str(tmp_path / "store"))
    server = SpireServer(ServeConfig(**kwargs))
    server.registry.install("demo", model)
    return server


class TestServerRobustness:
    def test_stop_answers_queued_requests_with_503(self, model, tmp_path):
        """Shutdown with parked lanes: queued requests get 503, not a hang."""
        reset_guards(GuardConfig(check_rate=0))
        server = _server(tmp_path, model, window=30.0, max_batch=8)
        body = _estimate_body("demo")

        async def drive():
            await server.start()
            request = asyncio.ensure_future(
                _async_http(server.port, "POST", "/v1/estimate", body)
            )
            await asyncio.sleep(0.3)  # parked in the 30 s batch window
            started = time.perf_counter()
            await server.stop()
            elapsed = time.perf_counter() - started
            status, _, payload = await request
            return elapsed, status, payload

        elapsed, status, payload = asyncio.run(drive())
        assert elapsed < 10.0  # far below the 30 s window: lanes flushed
        assert status == 503
        assert "error" in payload

    def test_graceful_drain_completes_queued_requests(self, model, tmp_path):
        reset_guards(GuardConfig(check_rate=0))
        server = _server(tmp_path, model, window=30.0, max_batch=8)
        body = _estimate_body("demo")
        want = _want_per_metric(model)

        async def drive():
            await server.start()
            request = asyncio.ensure_future(
                _async_http(server.port, "POST", "/v1/estimate", body)
            )
            await asyncio.sleep(0.3)
            await server.stop(drain=True)
            status, _, payload = await request
            return status, payload, server.stats.snapshot()

        status, payload, stats = asyncio.run(drive())
        assert status == 200
        assert payload["per_metric"] == want
        assert stats["drain"]["count"] == 1
        assert stats["drain"]["flushed"] >= 1

    def test_rollover_install_good_and_corrupt(self, model, tmp_path):
        reset_guards(GuardConfig(check_rate=0))
        server = _server(tmp_path, model, window=0.001)
        replacement = train_chaos_model(METRICS, seed=23)
        packed = tmp_path / "v2.spm"
        pack_model(replacement, packed)
        good = packed.read_bytes()
        corrupt = good[:-16] + b"\x00" * 16
        body = _estimate_body("demo")
        want_old = _want_per_metric(model)
        want_new = _want_per_metric(replacement)

        async def drive():
            await server.start()
            try:
                # Corrupt artifact: rejected with 422, old model untouched.
                status, _, payload = await _async_http(
                    server.port,
                    "POST",
                    "/v1/models/install?model=demo",
                    corrupt,
                    "application/octet-stream",
                )
                assert status == 422
                assert "rejected" in payload["error"]
                status, _, payload = await _async_http(
                    server.port, "POST", "/v1/estimate", body
                )
                assert status == 200
                assert payload["per_metric"] == want_old

                # The rejected artifact is quarantined under .staging/.
                quarantine = (
                    tmp_path / "store" / STAGING_DIRNAME / ".quarantine"
                )
                assert any(quarantine.iterdir())

                # Good artifact: swapped atomically, new answers served.
                status, _, payload = await _async_http(
                    server.port,
                    "POST",
                    "/v1/models/install?model=demo",
                    good,
                    "application/octet-stream",
                )
                assert status == 200
                assert payload["installed"] == "demo"
                status, _, payload = await _async_http(
                    server.port, "POST", "/v1/estimate", body
                )
                assert status == 200
                assert payload["per_metric"] == want_new
                snap = server.rollover.snapshot()
                assert snap["installs"] == 1
                assert snap["rejected"] == 1
            finally:
                await server.stop()

        asyncio.run(drive())

    def test_quarantine_under_traffic(self, model, tmp_path):
        """Corrupting the artifact mid-service yields a clean 503 +
        quarantine, and a good reinstall recovers — never a 500."""
        reset_guards(GuardConfig(check_rate=0))
        server = _server(tmp_path, model, window=0.001)
        body = _estimate_body("demo")
        want = _want_per_metric(model)
        artifact = tmp_path / "store" / "demo.spm"

        async def drive():
            await server.start()
            try:
                status, _, payload = await _async_http(
                    server.port, "POST", "/v1/estimate", body
                )
                assert status == 200
                assert payload["per_metric"] == want

                # Corrupt the packed artifact on disk, then force the
                # next request to remap it from the store.
                blob = artifact.read_bytes()
                artifact.write_bytes(blob[: len(blob) // 2])
                server.registry.evict("demo")

                status, headers, payload = await _async_http(
                    server.port, "POST", "/v1/estimate", body
                )
                assert status == 503  # model unavailable, not a 500
                assert "retry-after" in headers
                assert "demo" in payload["error"]
                quarantine = tmp_path / "store" / ".quarantine"
                assert any(quarantine.iterdir())
                assert server.registry.snapshot()["verify_failures"] == 1

                # A good reinstall recovers, bit-identically.
                server.registry.install("demo", model)
                status, _, payload = await _async_http(
                    server.port, "POST", "/v1/estimate", body
                )
                assert status == 200
                assert payload["per_metric"] == want
            finally:
                await server.stop()

        asyncio.run(drive())

    def test_quota_rejections_are_429_with_retry_after(self, model, tmp_path):
        reset_guards(GuardConfig(check_rate=0))
        server = _server(
            tmp_path,
            model,
            window=0.001,
            quotas={"demo": QuotaPolicy(rate=0.5)},
        )
        body = _estimate_body("demo")

        async def drive():
            await server.start()
            try:
                first = await _async_http(
                    server.port, "POST", "/v1/estimate", body
                )
                second = await _async_http(
                    server.port, "POST", "/v1/estimate", body
                )
                return first, second, server.stats.snapshot()
            finally:
                await server.stop()

        first, second, stats = asyncio.run(drive())
        assert first[0] == 200
        assert second[0] == 429
        assert float(second[1]["retry-after"]) > 0
        assert stats["quotas"]["rejected"] == 1
        assert stats["quotas"]["per_model"] == {"demo": 1}


# ---------------------------------------------------------------------------
# Supervisor end to end: crash recovery, flap -> stale, rollover adoption
# ---------------------------------------------------------------------------


def _fleet(tmp_path, model, workers=2, **overrides):
    store = tmp_path / "store"
    registry = ModelRegistry(store)
    registry.install("demo", model)
    registry.close()
    serve_config = ServeConfig(
        port=0, store_dir=str(store), window=0.001, drain_timeout=5.0
    )
    defaults = dict(
        workers=workers,
        heartbeat_interval=0.15,
        heartbeat_timeout=2.5,
        backoff_base=0.05,
        backoff_cap=0.5,
        max_restarts=3,
        start_timeout=30.0,
        drain_timeout=5.0,
    )
    defaults.update(overrides)
    return ServeSupervisor(serve_config, SupervisorConfig(**defaults))


def _pump(supervisor, seconds):
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        supervisor.step(timeout=0.1)


class TestSupervisorEndToEnd:
    def test_crash_restart_preserves_bit_identity(self, model, tmp_path):
        supervisor = _fleet(tmp_path, model, workers=2)
        body = _estimate_body("demo")
        want = _want_per_metric(model)
        try:
            supervisor.start()
            supervisor.wait_ready()
            status, _, payload = _http(
                supervisor.port, "POST", "/v1/estimate", body
            )
            assert status == 200
            assert payload["per_metric"] == want

            supervisor.kill_worker(0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                supervisor.step(timeout=0.1)
                snap = supervisor.snapshot()
                slot = snap["slots"][0]
                if snap["restart_total"] >= 1 and slot["ready"]:
                    break
            else:  # pragma: no cover - diagnostic
                pytest.fail(f"worker never recovered: {supervisor.snapshot()}")

            # The fleet answers bit-identically after the restart.
            for _ in range(4):
                status, _, payload = _http(
                    supervisor.port, "POST", "/v1/estimate", body
                )
                assert status == 200
                assert payload["per_metric"] == want
            snap = supervisor.snapshot()
            assert snap["stale_slots"] == []
            assert any(
                event["action"] == "restart" and event["reason"] == "crashed"
                for event in snap["events"]
            )
        finally:
            supervisor.stop()

    def test_flap_detection_marks_slot_stale(self, model, tmp_path):
        supervisor = _fleet(tmp_path, model, workers=2, max_restarts=1)
        body = _estimate_body("demo")
        want = _want_per_metric(model)
        try:
            supervisor.start()
            supervisor.wait_ready()

            # Kill slot 0 every time it comes back: the second crash
            # within the flap window exceeds max_restarts=1.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                snap = supervisor.snapshot()
                slot = snap["slots"][0]
                if slot["stale"]:
                    break
                if slot["alive"] and slot["ready"]:
                    supervisor.kill_worker(0)
                supervisor.step(timeout=0.1)
            snap = supervisor.snapshot()
            assert snap["stale_slots"] == [0]

            # The survivor keeps serving, bit-identically.
            status, _, payload = _http(
                supervisor.port, "POST", "/v1/estimate", body
            )
            assert status == 200
            assert payload["per_metric"] == want

            # Workers learn the fleet state; doctor flags the stale slot.
            from repro.guard.doctor import server_health_problems

            deadline = time.monotonic() + 10.0
            problems = []
            while time.monotonic() < deadline:
                supervisor.step(timeout=0.1)
                _, _, health = _probe_health(supervisor.port)
                problems = server_health_problems(health)
                if any("stale" in p for p in problems):
                    break
            assert any("stale" in p for p in problems)
        finally:
            supervisor.stop()

    def test_rollover_propagates_to_all_workers(self, model, tmp_path):
        supervisor = _fleet(tmp_path, model, workers=2)
        replacement = train_chaos_model(METRICS, seed=23)
        body = _estimate_body("demo")
        want_old = _want_per_metric(model)
        want_new = _want_per_metric(replacement)
        packed = tmp_path / "v2.spm"
        pack_model(replacement, packed)
        try:
            supervisor.start()
            supervisor.wait_ready()
            status, _, _ = _http(supervisor.port, "POST", "/v1/estimate", body)
            assert status == 200

            status, _, payload = _http(
                supervisor.port,
                "POST",
                "/v1/models/install?model=demo",
                packed.read_bytes(),
                "application/octet-stream",
            )
            assert status == 200

            # Every worker converges on the new model; no response is
            # ever anything but old-exact or new-exact.
            converged: set = set()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and len(converged) < 2:
                supervisor.step(timeout=0.05)
                status, headers, payload = _http(
                    supervisor.port, "POST", "/v1/estimate", body
                )
                assert status == 200
                assert payload["per_metric"] in (want_old, want_new)
                if payload["per_metric"] == want_new:
                    converged.add(headers.get("x-spire-worker"))
            assert len(converged) == 2, f"converged workers: {converged}"
        finally:
            supervisor.stop()


def _probe_health(port):
    status, headers, payload = _http(port, "GET", "/health")
    return status, headers, payload
