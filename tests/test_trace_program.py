"""Unit tests for the TraceProgram builder."""

import pytest

from repro.errors import ConfigError
from repro.trace import TraceProgram, TracePipeline


class TestBuilding:
    def test_empty_program_rejected(self):
        with pytest.raises(ConfigError):
            TraceProgram().emit(10)

    def test_emit_length(self):
        trace = TraceProgram().op("alu", dest="a").emit(123)
        assert len(trace) == 123

    def test_registers_shared_by_name(self):
        trace = (
            TraceProgram()
            .op("alu", dest="x")
            .op("alu", dest="y", sources=("x",))
            .emit(2)
        )
        assert trace[1].sources == (trace[0].dest,)

    def test_invalid_op_kind(self):
        with pytest.raises(ConfigError):
            TraceProgram().op("load", dest="a")
        with pytest.raises(ConfigError):
            TraceProgram().op("teleport", dest="a")

    def test_load_walks_stride(self):
        trace = TraceProgram().load("x", stride=64).emit(3)
        addresses = [u.address for u in trace]
        assert addresses == [64, 128, 192]

    def test_streams_are_independent(self):
        trace = (
            TraceProgram()
            .load("a", stride=64, stream="one")
            .load("b", stride=128, stream="two")
            .emit(4)
        )
        assert trace[0].address == 64
        assert trace[1].address == 128
        assert trace[2].address == 128
        assert trace[3].address == 256

    def test_dependent_load_serializes(self):
        trace = TraceProgram().load("p", dependent_on="p").emit(2)
        assert trace[0].sources == (trace[0].dest,)

    def test_store(self):
        trace = TraceProgram().op("alu", dest="v").store("v").emit(2)
        assert trace[1].kind == "store"
        assert trace[1].address is not None

    def test_branch_loop_pattern(self):
        trace = TraceProgram().branch(pattern="loop", period=4).emit(8)
        assert [u.taken for u in trace] == [True, True, True, False] * 2

    def test_branch_random_pattern_seeded(self):
        a = TraceProgram(seed=3).branch(pattern="random").emit(50)
        b = TraceProgram(seed=3).branch(pattern="random").emit(50)
        assert [u.taken for u in a] == [u.taken for u in b]

    def test_every_interval(self):
        trace = (
            TraceProgram()
            .op("alu", dest="a")
            .every(3, lambda p: p.op("div", dest="a", sources=("a",)))
            .emit(12)
        )
        divs = [u for u in trace if u.kind == "div"]
        # Iterations 0, 3, 6, 9 contribute a div each within 12 uops.
        assert 2 <= len(divs) <= 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            TraceProgram().load("x", stride=0)
        with pytest.raises(ConfigError):
            TraceProgram().branch(pattern="chaotic")
        with pytest.raises(ConfigError):
            TraceProgram().branch(pattern="loop", period=1)
        with pytest.raises(ConfigError):
            TraceProgram().every(0, lambda p: p)
        with pytest.raises(ConfigError):
            TraceProgram(footprint=32)

    def test_emit_reproducible(self):
        program = TraceProgram(seed=1).load("x").op("alu", dest="y", sources=("x",))
        assert program.emit(40) == program.emit(40)


class TestExecution:
    def test_custom_chase_is_slow(self):
        chase = (
            TraceProgram(seed=0, footprint=64 << 20)
            .load("p", stride=977 * 64, dependent_on="p")
            .emit(8_000)
        )
        stream = (
            TraceProgram(seed=0, footprint=64 << 20)
            .load("x", stride=64)
            .emit(8_000)
        )
        chase_ipc = TracePipeline().execute(chase).ipc
        stream_ipc = TracePipeline().execute(stream).ipc
        assert chase_ipc < stream_ipc / 2

    def test_divide_heavy_program_slow(self):
        clean = TraceProgram().op("alu", dest="a", sources=("a",)).emit(6_000)
        divy = (
            TraceProgram()
            .op("alu", dest="a", sources=("a",))
            .every(4, lambda p: p.op("div", dest="a", sources=("a",)))
            .emit(6_000)
        )
        assert TracePipeline().execute(divy).ipc < TracePipeline().execute(clean).ipc

    def test_program_feeds_spire_pipeline(self):
        from repro.core import SpireModel
        from repro.core.sample import Sample, SampleSet

        program = (
            TraceProgram(seed=2, footprint=32 << 20)
            .load("p", stride=977 * 64, dependent_on="p")
            .op("alu", dest="s", sources=("p",))
            .branch(pattern="loop", period=8)
        )
        pipeline = TracePipeline()
        samples = SampleSet()
        previous = pipeline.snapshot()
        for _ in range(8):
            pipeline.execute(program.emit(2_000))
            now = pipeline.snapshot()
            delta = now.delta_from(previous)
            previous = now
            for name, value in delta.items():
                if name in ("trace.instructions", "trace.cycles"):
                    continue
                samples.add(
                    Sample(name, delta["trace.cycles"],
                           delta["trace.instructions"], max(0.0, value))
                )
        model = SpireModel.train(samples)
        assert len(model) > 5
