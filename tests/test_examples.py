"""Smoke tests: every example script must run to completion.

Examples are documentation; a broken one is a broken promise.  Each runs
in a subprocess with the repo's source on the path.  The slowest examples
(full reproduction scale) are exercised through their main() with reduced
work where they expose it; the rest run as-is.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "analyze_perf_stat.py",
    "classic_roofline_demo.py",
]

SLOW_EXAMPLES = [
    "full_reproduction.py",
    "custom_processor.py",
    "trace_substrate.py",
    "microbench_training.py",
    "uncertainty_pool.py",
    "whatif_optimization.py",
    "phase_analysis.py",
    "html_report.py",
    "custom_trace_program.py",
]


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=EXAMPLES_DIR.parent,
    )


def test_every_example_is_listed():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
    # Clean up artifacts examples drop next to themselves.
    for artifact in ("classic_roofline_demo.svg", "onnx_report.html"):
        path = EXAMPLES_DIR / artifact
        if path.exists():
            path.unlink()
