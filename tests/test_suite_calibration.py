"""Suite calibration: every Table I workload lands in its intended category.

This is the reproduction's analog of the paper's Table I color column: the
Top-Down baseline, run on each workload's full counter totals, must report
the bottleneck the workload was designed to exhibit.
"""

import pytest

from repro.pipeline import ExperimentConfig, run_workload
from repro.uarch import skylake_gold_6126
from repro.workloads import all_workloads


@pytest.fixture(scope="module")
def calibration_runs():
    machine = skylake_gold_6126()
    config = ExperimentConfig(seed=2025)
    return {
        w.name: run_workload(w, machine, 120, config) for w in all_workloads()
    }


@pytest.mark.parametrize("name", [w.name for w in all_workloads()])
def test_workload_hits_expected_category(calibration_runs, name):
    run = calibration_runs[name]
    assert run.table1_category == run.workload.expected_bottleneck, (
        f"{name}: wanted {run.workload.expected_bottleneck}, TMA reports "
        f"{run.table1_category} (level 1: {run.tma.level1()})"
    )


def test_suite_spans_wide_ipc_range(calibration_runs):
    ipcs = [run.measured_ipc for run in calibration_runs.values()]
    assert min(ipcs) < 0.6
    assert max(ipcs) > 2.5


def test_multiplexing_overhead_in_paper_range(calibration_runs):
    # §IV: 1.6 % average, 4.6 % maximum execution-time overhead.
    fractions = [r.collection.overhead_fraction for r in calibration_runs.values()]
    average = sum(fractions) / len(fractions)
    assert 0.001 < average < 0.08
    assert max(fractions) < 0.15
