"""Unit tests for the graph/Dijkstra kernel, cross-checked with networkx."""

import random

import networkx as nx
import pytest

from repro.geometry.shortest_path import Graph, dijkstra


class TestGraph:
    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        assert "a" in g and "b" in g
        assert g.node_count == 2
        assert g.edge_count == 1

    def test_duplicate_edge_keeps_lighter(self):
        g = Graph()
        g.add_edge("a", "b", 5.0)
        g.add_edge("a", "b", 2.0)
        g.add_edge("a", "b", 9.0)
        assert g.neighbors("a") == {"b": 2.0}

    def test_negative_weight_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", -1.0)

    def test_edges_iteration(self):
        g = Graph()
        g.add_edge(1, 2, 0.5)
        g.add_edge(2, 3, 1.5)
        assert sorted(g.edges()) == [(1, 2, 0.5), (2, 3, 1.5)]

    def test_tuple_nodes(self):
        g = Graph()
        g.add_edge(("tail", 0), (0, 1), 0.0)
        assert ("tail", 0) in g


class TestDijkstra:
    def test_direct_path(self):
        g = Graph()
        g.add_edge("s", "t", 3.0)
        assert dijkstra(g, "s", "t") == (3.0, ["s", "t"])

    def test_prefers_cheaper_multi_hop(self):
        g = Graph()
        g.add_edge("s", "t", 10.0)
        g.add_edge("s", "a", 1.0)
        g.add_edge("a", "t", 2.0)
        assert dijkstra(g, "s", "t") == (3.0, ["s", "a", "t"])

    def test_source_equals_target(self):
        g = Graph()
        g.add_node("s")
        assert dijkstra(g, "s", "s") == (0.0, ["s"])

    def test_unreachable_raises(self):
        g = Graph()
        g.add_node("s")
        g.add_node("t")
        with pytest.raises(ValueError, match="no path"):
            dijkstra(g, "s", "t")

    def test_missing_nodes_raise(self):
        g = Graph()
        g.add_node("s")
        with pytest.raises(ValueError):
            dijkstra(g, "s", "missing")
        with pytest.raises(ValueError):
            dijkstra(g, "missing", "s")

    def test_zero_weight_cycles_terminate(self):
        g = Graph()
        g.add_edge("a", "b", 0.0)
        g.add_edge("b", "a", 0.0)
        g.add_edge("b", "t", 1.0)
        assert dijkstra(g, "a", "t")[0] == 1.0

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx_on_random_dags(self, seed):
        rng = random.Random(seed)
        n = 40
        g = Graph()
        ref = nx.DiGraph()
        for node in range(n):
            g.add_node(node)
            ref.add_node(node)
        for _ in range(240):
            a, b = rng.randrange(n), rng.randrange(n)
            if a == b:
                continue
            w = rng.uniform(0.0, 10.0)
            g.add_edge(a, b, w)
            if ref.has_edge(a, b):
                ref[a][b]["weight"] = min(ref[a][b]["weight"], w)
            else:
                ref.add_edge(a, b, weight=w)
        for _ in range(10):
            s, t = rng.randrange(n), rng.randrange(n)
            try:
                expected = nx.dijkstra_path_length(ref, s, t)
            except nx.NetworkXNoPath:
                with pytest.raises(ValueError):
                    dijkstra(g, s, t)
                continue
            distance, path = dijkstra(g, s, t)
            assert distance == pytest.approx(expected)
            assert path[0] == s and path[-1] == t
