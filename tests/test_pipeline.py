"""Integration tests for the experiment pipeline (scaled down)."""

import pytest

from repro.pipeline import (
    ExperimentConfig,
    cached_experiment,
    quick_workload_run,
    run_workload,
)
from repro.uarch import skylake_gold_6126
from repro.workloads import workload_by_name


class TestWorkloadRun:
    def test_quick_run_produces_samples_and_tma(self):
        run = quick_workload_run("graph500", n_windows=60)
        assert len(run.collection.samples) > 0
        assert 0 < run.measured_ipc < 4.0
        assert run.tma.fraction("memory_bound") > 0.3
        assert run.table1_category == "Memory"

    def test_runs_are_deterministic(self):
        config = ExperimentConfig(seed=7)
        machine = skylake_gold_6126()
        workload = workload_by_name("fftw")
        a = run_workload(workload, machine, 40, config)
        b = run_workload(workload, machine, 40, config)
        assert a.collection.total_cycles == b.collection.total_cycles

    def test_seed_changes_results(self):
        machine = skylake_gold_6126()
        workload = workload_by_name("fftw")
        a = run_workload(workload, machine, 40, ExperimentConfig(seed=1))
        b = run_workload(workload, machine, 40, ExperimentConfig(seed=2))
        assert a.collection.total_cycles != b.collection.total_cycles


class TestExperiment:
    def test_model_covers_catalog(self, small_experiment):
        from repro.counters.events import default_catalog

        trained = set(small_experiment.model.metrics)
        programmable = set(default_catalog().programmable_names)
        # Every programmable event must have been sampled and trained.
        assert trained == programmable

    def test_all_workloads_ran(self, small_experiment):
        assert len(small_experiment.training_runs) == 23
        assert len(small_experiment.testing_runs) == 4

    def test_analyze_testing_workload(self, small_experiment):
        report = small_experiment.analyze("tnn", top_k=10)
        assert len(report.top(10)) == 10
        assert report.measured_throughput > 0

    def test_analyze_training_workload(self, small_experiment):
        report = small_experiment.analyze("graph500", top_k=5)
        assert len(report.top(5)) == 5

    def test_analyze_unknown_workload(self, small_experiment):
        with pytest.raises(KeyError):
            small_experiment.analyze("nothere")

    def test_ensemble_bound_roughly_above_measured(self, small_experiment):
        # The ensemble min is an upper bound learned from training data;
        # on held-out workloads it should land near or above measured IPC
        # (the paper's Table II shows estimates close to measured values).
        for name in small_experiment.testing_runs:
            report = small_experiment.analyze(name)
            assert report.estimated_throughput > 0.4 * report.measured_throughput

    def test_cached_experiment_is_cached(self):
        config = ExperimentConfig(train_windows=48, test_windows=24)
        a = cached_experiment(config)
        b = cached_experiment(config)
        assert a is b


class TestPaperAgreement:
    """The headline §V result: SPIRE agrees with TMA on the test workloads."""

    @pytest.mark.parametrize(
        "workload,expected_area",
        [
            ("tnn", "Front-End"),
            ("scikit-learn-sparsify", "Bad Speculation"),
            ("onnx", "Memory"),
            ("parboil-cutcp", "Core"),
        ],
    )
    def test_tma_classification(self, small_experiment, workload, expected_area):
        run = small_experiment.testing_runs[workload]
        assert run.table1_category == expected_area

    @pytest.mark.parametrize(
        "workload,expected_area",
        [
            ("tnn", "Front-End"),
            ("scikit-learn-sparsify", "Bad Speculation"),
            ("onnx", "Memory"),
            ("parboil-cutcp", "Core"),
        ],
    )
    def test_spire_flags_expected_area_in_top_metrics(
        self, small_experiment, workload, expected_area
    ):
        report = small_experiment.analyze(workload, top_k=10)
        areas = [report.area_of(e.metric) for e in report.top(10)]
        assert expected_area in areas, (
            f"{workload}: expected a {expected_area} metric in the top 10, "
            f"got {areas}"
        )

    def test_spire_number_one_matches_tma_for_most_workloads(
        self, small_experiment
    ):
        # The paper reports agreement on "many of the same bottlenecks";
        # require the #1 metric's area (or the dominant area of the pool)
        # to match TMA on at least 3 of the 4 test workloads.
        matches = 0
        for name, run in small_experiment.testing_runs.items():
            report = small_experiment.analyze(name, top_k=10)
            top_area = report.area_of(report.top(1)[0].metric)
            if run.table1_category in (top_area, report.dominant_area(10)):
                matches += 1
        assert matches >= 3
