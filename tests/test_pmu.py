"""Unit tests for the PMU register model."""

import pytest

from repro.counters.pmu import PMU
from repro.errors import ConfigError


class TestProgramming:
    def test_program_within_capacity(self, machine):
        pmu = PMU(machine)
        pmu.program(["idq.dsb_uops", "br_misp_retired.all_branches"])
        assert pmu.programmed_events == [
            "idq.dsb_uops",
            "br_misp_retired.all_branches",
        ]

    def test_capacity_enforced(self, machine):
        pmu = PMU(machine)
        events = [
            "idq.dsb_uops",
            "br_misp_retired.all_branches",
            "longest_lat_cache.miss",
            "idq.ms_switches",
            "resource_stalls.any",
        ]
        assert len(events) > machine.num_programmable_counters
        with pytest.raises(ConfigError, match="programmable counters"):
            pmu.program(events)

    def test_unknown_event_rejected(self, machine):
        pmu = PMU(machine)
        with pytest.raises(ConfigError):
            pmu.program(["bogus.event"])

    def test_fixed_event_not_programmable(self, machine):
        pmu = PMU(machine)
        with pytest.raises(ConfigError, match="fixed"):
            pmu.program(["inst_retired.any"])

    def test_duplicate_events_rejected(self, machine):
        pmu = PMU(machine)
        with pytest.raises(ConfigError, match="duplicate"):
            pmu.program(["idq.dsb_uops", "idq.dsb_uops"])

    def test_reprogramming_replaces_group(self, machine):
        pmu = PMU(machine)
        pmu.program(["idq.dsb_uops"])
        pmu.program(["longest_lat_cache.miss"])
        assert pmu.programmed_events == ["longest_lat_cache.miss"]


class TestObservation:
    def test_fixed_counters_always_counted(self, machine, core, base_spec):
        pmu = PMU(machine)
        counts = pmu.observe(core.simulate_window(base_spec))
        assert "inst_retired.any" in counts
        assert "cpu_clk_unhalted.thread" in counts

    def test_programmed_events_counted(self, machine, core, base_spec):
        pmu = PMU(machine)
        pmu.program(["idq.dsb_uops"])
        counts = pmu.observe(core.simulate_window(base_spec))
        assert counts["idq.dsb_uops"] > 0

    def test_unprogrammed_events_absent(self, machine, core, base_spec):
        pmu = PMU(machine)
        pmu.program(["idq.dsb_uops"])
        counts = pmu.observe(core.simulate_window(base_spec))
        assert "longest_lat_cache.miss" not in counts

    def test_totals_accumulate(self, machine, core, base_spec):
        pmu = PMU(machine)
        pmu.program(["idq.dsb_uops"])
        a = pmu.observe(core.simulate_window(base_spec))
        b = pmu.observe(core.simulate_window(base_spec))
        totals = pmu.read_totals()
        assert totals["idq.dsb_uops"] == pytest.approx(
            a["idq.dsb_uops"] + b["idq.dsb_uops"]
        )

    def test_totals_survive_reprogramming(self, machine, core, base_spec):
        pmu = PMU(machine)
        pmu.program(["idq.dsb_uops"])
        pmu.observe(core.simulate_window(base_spec))
        pmu.program(["longest_lat_cache.miss"])
        pmu.observe(core.simulate_window(base_spec))
        totals = pmu.read_totals()
        assert "idq.dsb_uops" in totals
        assert "longest_lat_cache.miss" in totals

    def test_reset(self, machine, core, base_spec):
        pmu = PMU(machine)
        pmu.program(["idq.dsb_uops"])
        pmu.observe(core.simulate_window(base_spec))
        pmu.reset()
        totals = pmu.read_totals()
        assert all(v == 0.0 for v in totals.values())
