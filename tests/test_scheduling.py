"""Unit tests for multiplex scheduling and counter-constraint packing."""

import random

import pytest

from repro.counters.events import default_catalog
from repro.counters.scheduling import (
    AdaptiveScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    assign_counters,
    effective_masks,
    pack_events,
)
from repro.errors import ConfigError


class TestAssignCounters:
    def test_unconstrained_events_fit(self):
        assignment = assign_counters(["a", "b"], 2, {"a": None, "b": None})
        assert assignment is not None
        assert sorted(assignment.values()) == [0, 1]

    def test_over_capacity_infeasible(self):
        assert assign_counters(["a", "b", "c"], 2, {}) is None

    def test_mask_respected(self):
        assignment = assign_counters(
            ["a", "b"], 4, {"a": (2,), "b": None}
        )
        assert assignment["a"] == 2
        assert assignment["b"] != 2

    def test_conflicting_masks_infeasible(self):
        assert assign_counters(["a", "b"], 4, {"a": (2,), "b": (2,)}) is None

    def test_augmenting_path_reshuffles(self):
        # b must take slot 0, which forces a off slot 0 onto slot 1.
        assignment = assign_counters(
            ["a", "b"], 2, {"a": (0, 1), "b": (0,)}
        )
        assert assignment == {"a": 1, "b": 0}

    def test_out_of_range_slot_unusable(self):
        assert assign_counters(["a"], 2, {"a": (5,)}) is None


class TestEffectiveMasks:
    def test_in_range_mask_kept(self):
        catalog = default_catalog()
        masks = effective_masks(["cycle_activity.stalls_total"], 4, catalog)
        assert masks["cycle_activity.stalls_total"] == (2,)

    def test_out_of_range_mask_relaxed(self):
        catalog = default_catalog()
        masks = effective_masks(["cycle_activity.stalls_total"], 2, catalog)
        assert masks["cycle_activity.stalls_total"] is None


class TestPackEvents:
    def test_groups_respect_capacity(self):
        catalog = default_catalog()
        names = catalog.programmable_names
        groups = pack_events(names, 4, catalog)
        assert all(len(group) <= 4 for group in groups)
        assert sorted(n for g in groups for n in g) == sorted(names)

    def test_restricted_events_never_share_a_group(self):
        catalog = default_catalog()
        restricted = [
            name for name in catalog.programmable_names
            if catalog.get(name).counter_mask == (2,)
        ]
        assert len(restricted) >= 2
        groups = pack_events(catalog.programmable_names, 4, catalog)
        for group in groups:
            assert sum(1 for name in group if name in restricted) <= 1

    def test_every_group_feasible(self):
        catalog = default_catalog()
        groups = pack_events(catalog.programmable_names, 4, catalog)
        for group in groups:
            masks = effective_masks(group, 4, catalog)
            assert assign_counters(group, 4, masks) is not None

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            pack_events(["idq.dsb_uops"], 0, default_catalog())


class TestSchedulers:
    def test_round_robin_cycles(self):
        scheduler = RoundRobinScheduler()
        picks = [scheduler.next_group(i, 3) for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_random_covers_all_groups(self):
        scheduler = RandomScheduler(random.Random(0))
        picks = {scheduler.next_group(i, 4) for i in range(200)}
        assert picks == {0, 1, 2, 3}

    def test_adaptive_visits_all_groups_first(self):
        scheduler = AdaptiveScheduler(random.Random(0))
        first = []
        for i in range(3):
            group = scheduler.next_group(i, 3)
            first.append(group)
            scheduler.observe(group, 100.0, 100.0)
        assert sorted(first) == [0, 1, 2]

    def test_adaptive_prefers_high_variance_group(self):
        rng = random.Random(1)
        scheduler = AdaptiveScheduler(random.Random(2), epsilon=0.01)
        # Train: group 0 noisy, group 1 steady.
        for i in range(40):
            group = scheduler.next_group(i, 2)
            if group == 0:
                scheduler.observe(0, 100.0, rng.uniform(50.0, 400.0))
            else:
                scheduler.observe(1, 100.0, 200.0)
        picks = [scheduler.next_group(i, 2) for i in range(400)]
        assert picks.count(0) > picks.count(1) * 2

    def test_adaptive_epsilon_validation(self):
        with pytest.raises(ConfigError):
            AdaptiveScheduler(epsilon=0.0)


class TestSchedulersInCollector:
    @pytest.mark.parametrize(
        "scheduler_factory",
        [
            RoundRobinScheduler,
            lambda: RandomScheduler(random.Random(3)),
            lambda: AdaptiveScheduler(random.Random(3)),
        ],
    )
    def test_collection_works_with_each_scheduler(
        self, machine, core, scheduler_factory
    ):
        from repro.counters import CollectionConfig, SampleCollector
        from repro.uarch.spec import WindowSpec

        collector = SampleCollector(
            machine,
            config=CollectionConfig(
                windows_per_period=12,
                events=(
                    "idq.dsb_uops",
                    "br_misp_retired.all_branches",
                    "cycle_activity.stalls_total",
                    "cycle_activity.stalls_mem_any",
                ),
            ),
            scheduler=scheduler_factory(),
        )
        result = collector.collect(
            core, [WindowSpec(instructions=4_000)] * 48, rng=random.Random(0)
        )
        assert len(result.samples) > 0
        # The two slot-2-restricted events must be in different groups, so
        # at least 2 groups exist regardless of scheduler.
        assert len(collector._event_groups()) >= 2
