"""Unit tests for dataset and model persistence."""

import pytest

from repro.core.ensemble import SpireModel
from repro.core.sample import Sample, SampleSet
from repro.errors import DataError
from repro.io import (
    load_model,
    load_samples_csv,
    load_samples_json,
    save_model,
    save_samples_csv,
    save_samples_json,
)


@pytest.fixture
def samples():
    return SampleSet(
        [
            Sample("a", 1.0, 2.0, 3.0),
            Sample("b", 4.0, 5.0, 0.0),
        ]
    )


class TestCsv:
    def test_round_trip(self, samples, tmp_path):
        path = save_samples_csv(samples, tmp_path / "s.csv")
        loaded = load_samples_csv(path)
        assert loaded.to_records() == samples.to_records()

    def test_header_written(self, samples, tmp_path):
        path = save_samples_csv(samples, tmp_path / "s.csv")
        assert path.read_text().splitlines()[0] == "metric,time,work,metric_count"

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="does not exist"):
            load_samples_csv(tmp_path / "nope.csv")

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("metric,time\na,1\n")
        with pytest.raises(DataError, match="missing CSV columns"):
            load_samples_csv(path)

    def test_bad_value(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("metric,time,work,metric_count\na,notanumber,1,1\n")
        with pytest.raises(DataError, match="bad.csv:2"):
            load_samples_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("metric,time,work,metric_count\n")
        with pytest.raises(DataError, match="no samples"):
            load_samples_csv(path)

    def test_creates_parent_dirs(self, samples, tmp_path):
        path = save_samples_csv(samples, tmp_path / "deep" / "dir" / "s.csv")
        assert path.exists()


class TestJson:
    def test_round_trip(self, samples, tmp_path):
        path = save_samples_json(samples, tmp_path / "s.json")
        loaded = load_samples_json(path)
        assert loaded.to_records() == samples.to_records()

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(DataError, match="invalid JSON"):
            load_samples_json(path)

    def test_missing_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(DataError, match="missing 'samples'"):
            load_samples_json(path)


class TestModel:
    @pytest.fixture
    def model(self, two_metric_sampleset):
        return SpireModel.train(two_metric_sampleset)

    def test_round_trip(self, model, tmp_path):
        path = save_model(model, tmp_path / "model.json")
        loaded = load_model(path)
        assert sorted(loaded.metrics) == sorted(model.metrics)
        for metric in model.metrics:
            for intensity in (0.1, 1.0, 10.0, 1e4):
                assert loaded.roofline(metric).estimate(intensity) == pytest.approx(
                    model.roofline(metric).estimate(intensity)
                )

    def test_missing_model_file(self, tmp_path):
        with pytest.raises(DataError):
            load_model(tmp_path / "nope.json")

    def test_malformed_model(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"rooflines": {"m": {"bogus": 1}}}')
        with pytest.raises(DataError, match="malformed"):
            load_model(path)
