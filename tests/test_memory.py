"""Unit tests for the memory hierarchy model."""

import pytest

from repro.uarch.memory import MemoryModel
from repro.uarch.spec import WindowSpec


@pytest.fixture
def memory(machine):
    return MemoryModel(machine)


class TestCounts:
    def test_miss_chain(self, memory):
        spec = WindowSpec(
            frac_loads=0.4,
            l1_miss_per_load=0.1,
            l2_miss_fraction=0.5,
            l3_miss_fraction=0.5,
        )
        result = memory.evaluate(spec, instructions=10_000.0)
        assert result.loads == pytest.approx(4_000.0)
        assert result.l1_misses == pytest.approx(400.0)
        assert result.l2_served == pytest.approx(200.0)
        assert result.l3_served == pytest.approx(100.0)
        assert result.dram_served == pytest.approx(100.0)
        assert result.l1_hits == pytest.approx(3_600.0)

    def test_serving_levels_partition_misses(self, memory):
        spec = WindowSpec(frac_loads=0.3, l1_miss_per_load=0.2)
        result = memory.evaluate(spec, 10_000.0)
        assert (
            result.l2_served + result.l3_served + result.dram_served
        ) == pytest.approx(result.l1_misses)

    def test_no_loads_no_stalls(self, memory):
        spec = WindowSpec(frac_loads=0.0, frac_stores=0.0)
        result = memory.evaluate(spec, 10_000.0)
        assert result.total_stall_cycles == 0.0
        assert result.miss_latency_cycles == 0.0


class TestStalls:
    def test_latency_weighting(self, memory, machine):
        spec = WindowSpec(
            frac_loads=0.1,
            l1_miss_per_load=0.1,
            l2_miss_fraction=0.0,  # everything served by L2
        )
        result = memory.evaluate(spec, 10_000.0)
        assert result.miss_latency_cycles == pytest.approx(
            100.0 * machine.l2_latency
        )

    def test_mlp_divides_exposure(self, memory):
        base = WindowSpec(frac_loads=0.3, l1_miss_per_load=0.1, mlp=1.0)
        overlapped = WindowSpec(frac_loads=0.3, l1_miss_per_load=0.1, mlp=4.0)
        a = memory.evaluate(base, 10_000.0)
        b = memory.evaluate(overlapped, 10_000.0)
        assert b.cache_stall_cycles == pytest.approx(a.cache_stall_cycles / 4.0)

    def test_mlp_capped_by_mshrs(self, memory, machine):
        huge = WindowSpec(frac_loads=0.3, l1_miss_per_load=0.1, mlp=64.0)
        capped = WindowSpec(
            frac_loads=0.3,
            l1_miss_per_load=0.1,
            mlp=float(machine.max_outstanding_misses),
        )
        assert memory.evaluate(huge, 1e4).cache_stall_cycles == pytest.approx(
            memory.evaluate(capped, 1e4).cache_stall_cycles
        )

    def test_lock_loads_serialize(self, memory, machine):
        spec = WindowSpec(frac_loads=0.2, lock_load_fraction=0.01)
        result = memory.evaluate(spec, 10_000.0)
        assert result.lock_loads == pytest.approx(20.0)
        assert result.lock_stall_cycles == pytest.approx(
            20.0 * machine.lock_load_penalty
        )

    def test_deeper_misses_cost_more(self, memory):
        shallow = WindowSpec(
            frac_loads=0.3, l1_miss_per_load=0.05, l2_miss_fraction=0.1,
            l3_miss_fraction=0.1,
        )
        deep = WindowSpec(
            frac_loads=0.3, l1_miss_per_load=0.05, l2_miss_fraction=0.9,
            l3_miss_fraction=0.9,
        )
        assert (
            memory.evaluate(deep, 1e4).cache_stall_cycles
            > memory.evaluate(shallow, 1e4).cache_stall_cycles
        )


class TestTlbAndPrefetch:
    def test_dtlb_walks_counted(self, memory, machine):
        spec = WindowSpec(frac_loads=0.3, frac_stores=0.1,
                          dtlb_miss_per_access=0.01)
        result = memory.evaluate(spec, 10_000.0)
        assert result.dtlb_walks == pytest.approx(40.0)
        assert result.dtlb_walk_cycles == pytest.approx(
            40.0 * machine.tlb_walk_latency
        )
        assert 0 < result.tlb_stall_cycles < result.dtlb_walk_cycles

    def test_no_dtlb_by_default(self, memory):
        result = memory.evaluate(WindowSpec(), 10_000.0)
        assert result.dtlb_walks == 0.0
        assert result.tlb_stall_cycles == 0.0

    def test_prefetcher_hides_latency(self, memory):
        base = WindowSpec(frac_loads=0.3, l1_miss_per_load=0.1)
        covered = WindowSpec(frac_loads=0.3, l1_miss_per_load=0.1,
                             prefetcher_coverage=0.5)
        a = memory.evaluate(base, 1e4)
        b = memory.evaluate(covered, 1e4)
        assert b.cache_stall_cycles == pytest.approx(a.cache_stall_cycles / 2)

    def test_prefetcher_issues_requests(self, memory):
        spec = WindowSpec(frac_loads=0.3, l1_miss_per_load=0.1,
                          prefetcher_coverage=0.5)
        result = memory.evaluate(spec, 1e4)
        assert result.prefetches_issued > 0

    def test_tlb_stalls_hurt_ipc(self, machine):
        from repro.uarch import CoreModel

        core = CoreModel(machine)
        clean = core.simulate_window(WindowSpec())
        walked = core.simulate_window(WindowSpec(dtlb_miss_per_access=0.02))
        assert walked.ipc < clean.ipc

    def test_prefetching_helps_ipc(self, machine):
        from repro.uarch import CoreModel

        core = CoreModel(machine)
        spec = WindowSpec(frac_loads=0.35, l1_miss_per_load=0.08)
        import dataclasses

        covered = dataclasses.replace(spec, prefetcher_coverage=0.7)
        assert core.simulate_window(covered).ipc > core.simulate_window(spec).ipc

    def test_new_events_in_catalog(self, machine, core):
        from repro.counters.events import default_catalog

        counts = default_catalog().compute_all(
            core.simulate_window(
                WindowSpec(dtlb_miss_per_access=0.01, prefetcher_coverage=0.3,
                           l1_miss_per_load=0.05)
            ),
            machine,
        )
        assert counts["dtlb_load_misses.miss_causes_a_walk"] > 0
        assert counts["dtlb_load_misses.walk_active"] > 0
        assert counts["l2_rqsts.all_pf"] > 0
