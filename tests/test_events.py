"""Unit tests for the PMU event catalog (Table III)."""

import pytest

from repro.counters.events import (
    AREA_BAD_SPECULATION,
    AREA_CORE,
    AREA_FRONT_END,
    AREA_MEMORY,
    EventCatalog,
    EventDef,
    default_catalog,
    table3_abbreviations,
)
from repro.errors import ConfigError
from repro.uarch.spec import WindowSpec

# Every metric abbreviation from the paper's Table III and the area its
# color column assigns.
TABLE3 = {
    "FE.1": ("frontend_retired.latency_ge_2_bubbles_ge_1", AREA_FRONT_END),
    "FE.2": ("frontend_retired.latency_ge_2_bubbles_ge_2", AREA_FRONT_END),
    "FE.3": ("frontend_retired.latency_ge_2_bubbles_ge_3", AREA_FRONT_END),
    "DB.1": ("idq.dsb_cycles", AREA_FRONT_END),
    "DB.2": ("idq.dsb_uops", AREA_FRONT_END),
    "DB.3": ("frontend_retired.dsb_miss", AREA_FRONT_END),
    "DB.4": ("idq.all_dsb_cycles_any_uops", AREA_FRONT_END),
    "MS.1": ("idq.ms_switches", AREA_FRONT_END),
    "MS.2": ("idq.ms_dsb_cycles", AREA_FRONT_END),
    "DQ.1": ("idq_uops_not_delivered.cycles_le_1_uop_deliv.core", AREA_FRONT_END),
    "DQ.2": ("idq_uops_not_delivered.cycles_le_2_uop_deliv.core", AREA_FRONT_END),
    "DQ.3": ("idq_uops_not_delivered.cycles_le_3_uop_deliv.core", AREA_FRONT_END),
    "DQ.C": ("idq_uops_not_delivered.core", AREA_FRONT_END),
    "DQ.K": ("idq_uops_not_delivered.cycles_fe_was_ok", AREA_CORE),
    "BP.1": ("br_misp_retired.all_branches", AREA_BAD_SPECULATION),
    "BP.2": ("int_misc.recovery_cycles", AREA_BAD_SPECULATION),
    "BP.3": ("int_misc.recovery_cycles_any", AREA_BAD_SPECULATION),
    "M": ("cycle_activity.cycles_mem_any", AREA_MEMORY),
    "L1.1": ("cycle_activity.cycles_l1d_miss", AREA_MEMORY),
    "L1.2": ("cycle_activity.stalls_l1d_miss", AREA_MEMORY),
    "L1.3": ("l1d_pend_miss.pending_cycles", AREA_MEMORY),
    "L3": ("longest_lat_cache.miss", AREA_MEMORY),
    "LK": ("mem_inst_retired.lock_loads", AREA_MEMORY),
    "CS.1": ("cycle_activity.stalls_total", AREA_CORE),
    "CS.2": ("uops_retired.stall_cycles", AREA_CORE),
    "CS.3": ("uops_issued.stall_cycles", AREA_CORE),
    "CS.4": ("uops_executed.stall_cycles", AREA_CORE),
    "CS.5": ("resource_stalls.any", AREA_CORE),
    "CS.6": ("exe_activity.exe_bound_0_ports", AREA_CORE),
    "C1.1": ("uops_executed.core_cycles_ge_1", AREA_CORE),
    "C1.2": ("uops_executed.cycles_ge_1_uop_exec", AREA_CORE),
    "C1.3": ("exe_activity.1_ports_util", AREA_CORE),
    "VW": ("uops_issued.vector_width_mismatch", AREA_CORE),
}


class TestTable3Coverage:
    @pytest.mark.parametrize("abbr", sorted(TABLE3))
    def test_metric_present_with_correct_name_and_area(self, abbr):
        name, area = TABLE3[abbr]
        catalog = default_catalog()
        assert name in catalog
        event = catalog.get(name)
        assert event.abbr == abbr
        assert event.area == area

    def test_abbreviation_lookup(self):
        mapping = table3_abbreviations()
        assert mapping["BP.1"] == "br_misp_retired.all_branches"
        assert len(mapping) >= len(TABLE3)

    def test_fixed_counters_present(self):
        catalog = default_catalog()
        assert "inst_retired.any" in catalog.fixed_names
        assert "cpu_clk_unhalted.thread" in catalog.fixed_names

    def test_catalog_size(self):
        # Paper used 424 metrics; our simulated PMU covers every Table III
        # metric plus supporting events.
        assert len(default_catalog()) >= 45


class TestCatalogMechanics:
    def test_duplicate_names_rejected(self):
        event = EventDef("dup", AREA_CORE, lambda a, m: 0.0)
        with pytest.raises(ConfigError):
            EventCatalog([event, event])

    def test_unknown_get_rejected(self):
        with pytest.raises(ConfigError):
            default_catalog().get("nonexistent.event")

    def test_restricted_keeps_fixed(self):
        catalog = default_catalog().restricted(["idq.dsb_uops"])
        assert "idq.dsb_uops" in catalog
        assert "inst_retired.any" in catalog
        assert "longest_lat_cache.miss" not in catalog

    def test_areas_mapping_complete(self):
        catalog = default_catalog()
        areas = catalog.areas()
        assert set(areas) == set(catalog.names)

    def test_negative_count_rejected(self, machine, core, base_spec):
        bad = EventDef("bad", AREA_CORE, lambda a, m: -1.0)
        activity = core.simulate_window(base_spec)
        with pytest.raises(ConfigError):
            bad.compute(activity, machine)


class TestFormulaSanity:
    @pytest.fixture
    def counts(self, core, machine):
        spec = WindowSpec(
            frac_loads=0.3,
            frac_branches=0.2,
            branch_mispredict_rate=0.02,
            l1_miss_per_load=0.05,
            frac_divides=0.005,
            lock_load_fraction=0.002,
            microcode_fraction=0.02,
            dsb_coverage=0.7,
            fe_bubble_rate=0.005,
        )
        activity = core.simulate_window(spec)
        return default_catalog().compute_all(activity, machine), activity

    def test_all_counts_non_negative(self, counts):
        values, _ = counts
        assert all(v >= 0 for v in values.values())

    def test_work_and_time(self, counts):
        values, activity = counts
        assert values["inst_retired.any"] == activity.instructions
        assert values["cpu_clk_unhalted.thread"] == activity.cycles

    def test_bubble_severity_ordering(self, counts):
        values, _ = counts
        assert (
            values["frontend_retired.latency_ge_2_bubbles_ge_1"]
            >= values["frontend_retired.latency_ge_2_bubbles_ge_2"]
            >= values["frontend_retired.latency_ge_2_bubbles_ge_3"]
        )

    def test_delivery_histogram_ordering(self, counts):
        values, _ = counts
        assert (
            values["idq_uops_not_delivered.cycles_le_3_uop_deliv.core"]
            >= values["idq_uops_not_delivered.cycles_le_2_uop_deliv.core"]
            >= values["idq_uops_not_delivered.cycles_le_1_uop_deliv.core"]
        )

    def test_mispredicts_below_branches(self, counts):
        values, _ = counts
        assert (
            values["br_misp_retired.all_branches"]
            <= values["br_inst_retired.all_branches"]
        )

    def test_l3_misses_below_l1_misses(self, counts):
        values, _ = counts
        assert (
            values["longest_lat_cache.miss"] <= values["mem_load_retired.l1_miss"]
        )

    def test_stall_cycles_below_total_cycles(self, counts):
        values, _ = counts
        assert values["cycle_activity.stalls_total"] <= values[
            "cpu_clk_unhalted.thread"
        ]

    def test_uop_flow(self, counts):
        values, _ = counts
        assert (
            values["uops_retired.retire_slots"]
            <= values["uops_executed.thread"]
            <= values["uops_issued.any"]
        )
