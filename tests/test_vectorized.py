"""Scalar-vs-vectorized parity: the NumPy kernels against the reference path.

Every kernel behind ``SPIRE_SCALAR_FALLBACK`` must reproduce the scalar
implementation: same breakpoints, same estimates, same rejection reasons.
These tests run each operation twice — once per path — and compare to
1e-9 (bit-identical in practice), plus the edge cases where the two
implementations are most likely to drift: empty groups, single-breakpoint
functions, duplicate-x Pareto columns, all-infinite-intensity metrics,
and NaN rejection in the sanitizers.
"""

import math
from contextlib import contextmanager

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columns import SampleArray
from repro.core.direction import detect_direction, spearman, spearman_arrays
from repro.core.ensemble import SpireModel
from repro.core.roofline import fit_metric_roofline
from repro.core.sample import Sample, SampleSet
from repro.core.sanitize import SampleSanitizer
from repro.errors import FitError
from repro.geometry.pareto import pareto_front
from repro.geometry.piecewise import Breakpoint, PiecewiseLinear

TOLERANCE = 1e-9


@contextmanager
def forced_fallback(monkeypatch_env: dict, enabled: bool):
    previous = monkeypatch_env.get("SPIRE_SCALAR_FALLBACK")
    try:
        if enabled:
            monkeypatch_env["SPIRE_SCALAR_FALLBACK"] = "1"
        else:
            monkeypatch_env.pop("SPIRE_SCALAR_FALLBACK", None)
        yield
    finally:
        monkeypatch_env.pop("SPIRE_SCALAR_FALLBACK", None)
        if previous is not None:
            monkeypatch_env["SPIRE_SCALAR_FALLBACK"] = previous


def both_paths(operation):
    """Run ``operation`` under the scalar and vectorized paths."""
    import os

    results = []
    for enabled in (True, False):
        with forced_fallback(os.environ, enabled):
            results.append(operation())
    return results


def close(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= TOLERANCE * max(1.0, abs(a), abs(b))


def assert_model_parity(scalar: SpireModel, vectorized: SpireModel) -> None:
    assert scalar.metrics == vectorized.metrics
    for metric in scalar.metrics:
        s_bps = scalar.roofline(metric).function.breakpoints
        v_bps = vectorized.roofline(metric).function.breakpoints
        assert len(s_bps) == len(v_bps), metric
        for s_bp, v_bp in zip(s_bps, v_bps):
            assert close(s_bp.x, v_bp.x), metric
            assert close(s_bp.y, v_bp.y), metric


@st.composite
def sample_cloud(draw):
    metrics = draw(st.sampled_from([("m",), ("m", "n")]))
    samples = []
    for metric in metrics:
        n = draw(st.integers(min_value=2, max_value=25))
        for _ in range(n):
            work = draw(st.floats(min_value=1.0, max_value=1e6))
            time = draw(st.floats(min_value=1.0, max_value=1e6))
            count = draw(
                st.one_of(
                    st.just(0.0), st.floats(min_value=1e-3, max_value=1e6)
                )
            )
            samples.append(
                Sample(metric, time=time, work=work, metric_count=count)
            )
    return samples


@settings(max_examples=40, deadline=None)
@given(sample_cloud())
def test_train_and_estimate_parity(samples):
    scalar, vectorized = both_paths(
        lambda: SpireModel.train(SampleSet(samples), jobs=1)
    )
    assert_model_parity(scalar, vectorized)

    s_est, v_est = both_paths(lambda: scalar.estimate(SampleSet(samples)))
    assert s_est.per_metric.keys() == v_est.per_metric.keys()
    for metric, value in s_est.per_metric.items():
        assert close(value, v_est.per_metric[metric])
    assert s_est.sample_counts == v_est.sample_counts


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1,
        max_size=40,
    ),
    st.lists(
        st.floats(min_value=-10.0, max_value=110.0), min_size=1, max_size=20
    ),
)
def test_piecewise_evaluation_parity(points, queries):
    xs = sorted({round(x, 3) for x, _ in points})
    bps = [Breakpoint(x, y) for x, (_, y) in zip(xs, points)]
    function = PiecewiseLinear(bps)
    scalar = [function(q) for q in queries]
    batch = function.evaluate_many(queries)
    assert len(scalar) == len(batch)
    for a, b in zip(scalar, batch):
        assert close(a, b)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from([1.0, 2.0, 2.0, 3.0, 5.0]),  # duplicate-x heavy
            st.floats(min_value=0.0, max_value=10.0),
        ),
        min_size=0,
        max_size=40,
    )
)
def test_pareto_front_parity_with_duplicate_x(points):
    scalar, vectorized = both_paths(lambda: pareto_front(points))
    assert scalar == vectorized


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=100.0),
            st.floats(min_value=0.1, max_value=100.0),
        ),
        min_size=0,
        max_size=40,
    )
)
def test_direction_parity(pairs):
    scalar, vectorized = both_paths(lambda: detect_direction(pairs))
    assert scalar == vectorized
    if len(pairs) >= 3:
        xs = [x for x, _ in pairs]
        ys = [y for _, y in pairs]
        assert close(
            spearman(xs, ys),
            spearman_arrays(np.asarray(xs), np.asarray(ys)),
        )


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------


def test_empty_sample_group_raises_on_both_paths():
    for result in both_paths(
        lambda: pytest.raises(FitError, fit_metric_roofline, [])
    ):
        assert "zero samples" in str(result.value)


def test_single_breakpoint_function_batch_evaluation():
    function = PiecewiseLinear([Breakpoint(2.0, 5.0)])
    assert function.evaluate_many([0.0, 2.0, 10.0]) == [5.0, 5.0, 5.0]
    assert function(math.inf) == 5.0


def test_all_infinite_intensity_metric_parity():
    # The metric never fires: every sample has metric_count == 0.
    samples = [
        Sample("m", time=1.0, work=float(w), metric_count=0.0)
        for w in (3, 7, 5)
    ]
    scalar, vectorized = both_paths(lambda: fit_metric_roofline(samples))
    assert_model_parity(
        SpireModel({"m": scalar}), SpireModel({"m": vectorized})
    )
    # A constant at the best observed throughput.
    assert len(vectorized.function.breakpoints) == 1
    assert vectorized.function(123.0) == 7.0
    s_est, v_est = both_paths(
        lambda: SpireModel({"m": scalar}).estimate(SampleSet(samples))
    )
    assert close(s_est.per_metric["m"], v_est.per_metric["m"])


def test_sanitizer_rejection_parity():
    records = [
        {"metric": "m", "time": 1.0, "work": 2.0, "metric_count": 3.0},
        {"metric": "m", "time": float("nan"), "work": 2.0, "metric_count": 3.0},
        {"metric": "m", "time": 1.0, "work": -2.0, "metric_count": 3.0},
        {"metric": "m", "time": 1.0, "work": 2.0, "metric_count": float("inf")},
        {"metric": "m", "time": 0.0, "work": 2.0, "metric_count": 3.0},
        {"metric": "m", "time": 1.0, "work": 2.0, "metric_count": 3.0},
    ]

    def run():
        # from_records(validate=False) admits the dirty rows; the sanitizer
        # then routes the array through the vectorized screen or, under the
        # fallback, the scalar record loop.
        array = SampleArray.from_records(records, validate=False)
        return SampleSanitizer().sanitize(array)

    (s_clean, s_report), (v_clean, v_report) = both_paths(run)
    assert len(s_clean) == len(v_clean) == 2
    assert s_report.total == v_report.total
    assert s_report.kept == v_report.kept
    assert [q.reason for q in s_report.quarantined] == [
        q.reason for q in v_report.quarantined
    ]
    assert [q.reason for q in v_report.quarantined] == [
        "NaN time",
        "negative work",
        "infinite metric_count",
        "non-positive time",
    ]
