"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def sample_csv(tmp_path):
    path = tmp_path / "samples.csv"
    assert (
        main(
            [
                "simulate",
                "tnn",
                "--out",
                str(path),
                "--windows",
                "120",
            ]
        )
        == 0
    )
    return path


class TestWorkloads:
    def test_lists_suite(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "tnn" in out
        assert "parboil-cutcp" in out
        assert "testing" in out


class TestSimulate:
    def test_writes_csv(self, sample_csv, capsys):
        assert sample_csv.exists()
        header = sample_csv.read_text().splitlines()[0]
        assert header == "metric,time,work,metric_count"

    def test_unknown_workload_fails_cleanly(self, tmp_path, capsys):
        code = main(["simulate", "not-a-workload", "--out", str(tmp_path / "x.csv")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestTrainAnalyze:
    def test_train_then_analyze(self, sample_csv, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        assert main(["train", str(sample_csv), "--model", str(model_path)]) == 0
        assert model_path.exists()
        assert (
            main(
                [
                    "analyze",
                    "--model",
                    str(model_path),
                    "--data",
                    str(sample_csv),
                    "--top",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bottleneck pool" in out
        assert "measured" in out

    def test_analyze_missing_model(self, sample_csv, tmp_path, capsys):
        code = main(
            ["analyze", "--model", str(tmp_path / "no.json"), "--data", str(sample_csv)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestTma:
    def test_tma_renders_tree(self, capsys):
        assert main(["tma", "onnx", "--windows", "60"]) == 0
        out = capsys.readouterr().out
        assert "memory_bound" in out
        assert "main bottleneck:" in out


class TestParsePerf:
    def test_parse_perf(self, tmp_path, capsys):
        perf_file = tmp_path / "perf.txt"
        perf_file.write_text(
            "1.0,1000,,instructions,1,100\n"
            "1.0,2000,,cycles,1,100\n"
            "1.0,10,,cache-misses,1,100\n"
        )
        out_csv = tmp_path / "out.csv"
        assert main(["parse-perf", str(perf_file), "--out", str(out_csv)]) == 0
        assert out_csv.exists()
        assert "cache-misses" in out_csv.read_text()


class TestPlot:
    def test_plot_svg(self, sample_csv, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        main(["train", str(sample_csv), "--model", str(model_path)])
        svg_path = tmp_path / "plot.svg"
        assert (
            main(
                [
                    "plot",
                    "--model",
                    str(model_path),
                    "--metric",
                    "idq.dsb_uops",
                    "--out",
                    str(svg_path),
                ]
            )
            == 0
        )
        assert svg_path.exists()

    def test_plot_terminal(self, sample_csv, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        main(["train", str(sample_csv), "--model", str(model_path)])
        assert (
            main(["plot", "--model", str(model_path), "--metric", "idq.dsb_uops"])
            == 0
        )
        out = capsys.readouterr().out
        assert "idq.dsb_uops" in out

    def test_plot_unknown_metric(self, sample_csv, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        main(["train", str(sample_csv), "--model", str(model_path)])
        assert (
            main(["plot", "--model", str(model_path), "--metric", "nope"]) == 2
        )


class TestReport:
    def test_report_prints_agreement(self, capsys):
        assert (
            main(
                [
                    "report",
                    "--train-windows",
                    "60",
                    "--test-windows",
                    "48",
                    "--top",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "agreement:" in out
        assert "tnn" in out


class TestWhatIf:
    def test_whatif_sweep(self, sample_csv, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        main(["train", str(sample_csv), "--model", str(model_path)])
        assert (
            main(
                [
                    "whatif",
                    "--model",
                    str(model_path),
                    "--data",
                    str(sample_csv),
                    "--factors",
                    "2",
                    "--top",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "biggest projected win" in out


class TestTrace:
    def test_trace_collect(self, tmp_path, capsys):
        out_csv = tmp_path / "trace.csv"
        assert (
            main(
                [
                    "trace",
                    "branchy",
                    "--uops",
                    "4000",
                    "--window",
                    "1000",
                    "--intensities",
                    "0.2,0.8",
                    "--out",
                    str(out_csv),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "IPC" in out
        assert out_csv.exists()
        assert "trace.branch_mispredicts" in out_csv.read_text()

    def test_trace_with_model(self, tmp_path, capsys):
        csv_path = tmp_path / "trace.csv"
        model_path = tmp_path / "trace-model.json"
        main(
            ["trace", "mixed", "--uops", "6000", "--window", "1000",
             "--out", str(csv_path)]
        )
        main(["train", str(csv_path), "--model", str(model_path)])
        assert (
            main(
                ["trace", "pointer_chase", "--uops", "4000", "--window",
                 "1000", "--intensities", "0.8", "--model", str(model_path),
                 "--top", "4"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Memory" in out or "trace." in out

    def test_unknown_kernel(self, capsys):
        assert main(["trace", "quantum"]) == 2


class TestCoverage:
    def test_coverage_report(self, sample_csv, capsys):
        assert (
            main(["coverage", "--data", str(sample_csv), "--min-samples", "5"])
            == 0
        )
        out = capsys.readouterr().out
        assert "decades" in out

    def test_train_prints_coverage_warnings(self, sample_csv, tmp_path, capsys):
        model_path = tmp_path / "m.json"
        assert (
            main(
                [
                    "train",
                    str(sample_csv),
                    "--model",
                    str(model_path),
                    "--min-samples",
                    "10000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "coverage warning" in out


class TestReportArchive:
    def test_report_archives_run(self, tmp_path, capsys):
        archive_dir = tmp_path / "archive"
        assert (
            main(
                ["report", "--train-windows", "48", "--test-windows", "24",
                 "--archive", str(archive_dir)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "archived" in out
        from repro.io import load_experiment

        archive = load_experiment(archive_dir)
        assert len(archive.workloads()) == 27


class TestFaultsim:
    def test_faultsim_serial_crash_passes(self, capsys):
        # jobs=1 keeps the smoke cheap: the injected crash raises
        # WorkerCrashError in-process and the retry absorbs it.
        assert (
            main(
                ["faultsim", "--train-windows", "48", "--test-windows", "24",
                 "--jobs", "1", "--crashes", "1", "--hangs", "0",
                 "--corrupt-samples", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fault plan" in out
        assert "PASS" in out

    def test_faultsim_no_faults_passes(self, capsys):
        assert (
            main(
                ["faultsim", "--train-windows", "48", "--test-windows", "24",
                 "--jobs", "1", "--crashes", "0", "--hangs", "0",
                 "--corrupt-samples", "0"]
            )
            == 0
        )


class TestReportResilienceFlags:
    def test_report_accepts_resilience_flags(self, capsys):
        assert (
            main(
                ["report", "--train-windows", "48", "--test-windows", "24",
                 "--top", "3", "--retries", "1", "--failure-policy", "skip"]
            )
            == 0
        )
        assert "agreement:" in capsys.readouterr().out

    def test_report_resume_from_checkpoints(self, tmp_path, capsys):
        from repro.pipeline import ExperimentConfig, run_workload
        from repro.runtime import ExperimentCache, experiment_cache_key
        from repro.uarch import skylake_gold_6126
        from repro.workloads import workload_by_name

        # Pre-seed one checkpoint, as an interrupted run would have.
        config = ExperimentConfig(train_windows=48, test_windows=24)
        machine = skylake_gold_6126()
        cache = ExperimentCache(tmp_path)
        key = experiment_cache_key(config, machine)
        run = run_workload(workload_by_name("graph500"), machine, 48, config)
        cache.store_checkpoint(key, "graph500", run)

        assert (
            main(
                ["report", "--train-windows", "48", "--test-windows", "24",
                 "--top", "3", "--cache-dir", str(tmp_path), "--resume"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resumed 1 workload(s) from checkpoints" in out


class TestDerived:
    def test_derived_metrics_printed(self, capsys):
        assert main(["derived", "graph500", "--windows", "60"]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out
        assert "l3_mpki" in out
        assert "dsb_coverage" in out
