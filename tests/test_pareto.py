"""Unit tests for Pareto-front extraction."""

import random

from repro.geometry.pareto import is_pareto_optimal, pareto_front


class TestParetoFront:
    def test_empty(self):
        assert pareto_front([]) == []

    def test_single_point(self):
        assert pareto_front([(1.0, 2.0)]) == [(1.0, 2.0)]

    def test_dominated_point_removed(self):
        front = pareto_front([(1.0, 1.0), (2.0, 2.0)])
        assert front == [(2.0, 2.0)]

    def test_incomparable_points_kept(self):
        front = pareto_front([(1.0, 2.0), (2.0, 1.0)])
        assert front == [(2.0, 1.0), (1.0, 2.0)]

    def test_sorted_by_decreasing_x(self):
        front = pareto_front([(1.0, 5.0), (3.0, 3.0), (5.0, 1.0)])
        assert front == [(5.0, 1.0), (3.0, 3.0), (1.0, 5.0)]

    def test_duplicates_collapsed(self):
        front = pareto_front([(1.0, 1.0), (1.0, 1.0)])
        assert front == [(1.0, 1.0)]

    def test_same_x_keeps_highest_y(self):
        front = pareto_front([(1.0, 1.0), (1.0, 3.0)])
        assert front == [(1.0, 3.0)]

    def test_same_y_keeps_highest_x(self):
        front = pareto_front([(1.0, 3.0), (2.0, 3.0)])
        assert front == [(2.0, 3.0)]

    def test_front_y_strictly_increases_leftward(self):
        rng = random.Random(3)
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(200)]
        front = pareto_front(points)
        ys = [y for _, y in front]
        assert all(b > a for a, b in zip(ys, ys[1:]))
        xs = [x for x, _ in front]
        assert all(b < a for a, b in zip(xs, xs[1:]))

    def test_every_front_point_is_pareto_optimal(self):
        rng = random.Random(5)
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(150)]
        front = pareto_front(points)
        for point in front:
            assert is_pareto_optimal(point, points)

    def test_every_non_front_point_is_dominated(self):
        rng = random.Random(7)
        points = list({(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(150)})
        front = set(pareto_front(points))
        for point in points:
            if point not in front:
                assert not is_pareto_optimal(point, points)


class TestIsParetoOptimal:
    def test_point_dominates_itself_is_fine(self):
        assert is_pareto_optimal((1.0, 1.0), [(1.0, 1.0)])

    def test_detects_domination(self):
        assert not is_pareto_optimal((1.0, 1.0), [(2.0, 2.0)])

    def test_partial_order(self):
        assert is_pareto_optimal((1.0, 2.0), [(2.0, 1.0)])
