"""Unit tests for the gshare branch predictor."""

import random

import pytest

from repro.errors import ConfigError
from repro.trace.branch import GsharePredictor


class TestConstruction:
    def test_defaults(self):
        predictor = GsharePredictor()
        assert predictor.predictions == 0
        assert predictor.misprediction_rate == 0.0

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            GsharePredictor(table_bits=0)
        with pytest.raises(ConfigError):
            GsharePredictor(table_bits=4, history_bits=8)


class TestLearning:
    def test_always_taken_branch_learned(self):
        predictor = GsharePredictor()
        for _ in range(100):
            predictor.update(0x400, taken=True)
        predictor.reset_stats()
        for _ in range(100):
            predictor.update(0x400, taken=True)
        assert predictor.misprediction_rate == 0.0

    def test_loop_pattern_learned(self):
        # taken 7x then not-taken, like an 8-iteration loop back-edge.
        predictor = GsharePredictor(history_bits=8)
        pattern = [True] * 7 + [False]
        for _ in range(60):
            for taken in pattern:
                predictor.update(0x400, taken)
        predictor.reset_stats()
        for _ in range(20):
            for taken in pattern:
                predictor.update(0x400, taken)
        assert predictor.misprediction_rate < 0.05

    def test_random_branch_near_half(self):
        predictor = GsharePredictor()
        rng = random.Random(0)
        for _ in range(2000):
            predictor.update(0x400, rng.random() < 0.5)
        predictor.reset_stats()
        for _ in range(4000):
            predictor.update(0x400, rng.random() < 0.5)
        assert 0.35 < predictor.misprediction_rate < 0.65

    def test_biased_branch_below_bias(self):
        predictor = GsharePredictor()
        rng = random.Random(1)
        for _ in range(4000):
            predictor.update(0x400, rng.random() < 0.9)
        assert predictor.misprediction_rate < 0.25

    def test_different_pcs_use_different_entries(self):
        predictor = GsharePredictor(history_bits=0)
        for _ in range(50):
            predictor.update(0x100, taken=True)
            predictor.update(0x200, taken=False)
        predictor.reset_stats()
        predictor.update(0x100, taken=True)
        predictor.update(0x200, taken=False)
        assert predictor.mispredictions == 0

    def test_predict_matches_update_outcome(self):
        predictor = GsharePredictor()
        for _ in range(20):
            predictor.update(0x400, taken=True)
        assert predictor.predict(0x400) is True

    def test_stats_counting(self):
        predictor = GsharePredictor()
        predictor.update(0x400, taken=False)  # initialized weakly taken
        assert predictor.predictions == 1
        assert predictor.mispredictions == 1
