"""Property-based tests (hypothesis) for the fitting invariants.

These check the paper's §III-B/III-D guarantees on arbitrary sample
clouds: the fitted roofline always lies on or above its training samples,
its left region is increasing and concave-down, its right region is
decreasing, and ensemble estimation is the minimum of per-metric
time-weighted averages.
"""

import math

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ensemble import SpireModel
from repro.core.roofline import fit_metric_roofline
from repro.core.sample import Sample, SampleSet, time_weighted_average

finite_positive = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def sample_strategy(draw, metric="m"):
    work = draw(st.floats(min_value=1.0, max_value=1e6))
    time = draw(st.floats(min_value=1.0, max_value=1e6))
    # Mix of finite and zero metric counts (infinite intensity).
    count = draw(
        st.one_of(st.just(0.0), st.floats(min_value=1e-3, max_value=1e6))
    )
    return Sample(metric, time=time, work=work, metric_count=count)


@st.composite
def sample_cloud(draw, min_size=1, max_size=60):
    return draw(st.lists(sample_strategy(), min_size=min_size, max_size=max_size))


@settings(max_examples=60, deadline=None)
@given(sample_cloud())
def test_roofline_is_upper_bound_of_training_data(samples):
    roofline = fit_metric_roofline(samples)
    for s in samples:
        bound = roofline.estimate(s.intensity)
        assert bound >= s.throughput - 1e-6 * max(1.0, s.throughput)


@settings(max_examples=60, deadline=None)
@given(sample_cloud())
def test_roofline_peak_is_apex(samples):
    roofline = fit_metric_roofline(samples)
    peak = max(bp.y for bp in roofline.function.breakpoints)
    best = max(s.throughput for s in samples)
    assert peak >= best - 1e-9 * max(1.0, best)


@settings(max_examples=60, deadline=None)
@given(sample_cloud())
def test_left_region_increasing_concave_down(samples):
    roofline = fit_metric_roofline(samples)
    apex_x = roofline.apex.x
    left = [bp for bp in roofline.function.breakpoints if bp.x <= apex_x]
    ys = [bp.y for bp in left]
    assert ys == sorted(ys)
    slopes = [
        (b.y - a.y) / (b.x - a.x) for a, b in zip(left, left[1:]) if b.x > a.x
    ]
    assert all(s2 <= s1 + 1e-9 for s1, s2 in zip(slopes, slopes[1:]))


@settings(max_examples=60, deadline=None)
@given(sample_cloud())
def test_right_region_non_increasing(samples):
    roofline = fit_metric_roofline(samples)
    apex_x = roofline.apex.x
    finite_points = [p for p in roofline.training_points if math.isfinite(p[0])]
    inf_levels = [y for x, y in roofline.training_points if math.isinf(x)]
    bps = [bp for bp in roofline.function.breakpoints if bp.x >= apex_x]
    ys = [bp.y for bp in bps]
    if inf_levels and finite_points and max(inf_levels) > max(
        y for _, y in finite_points
    ):
        # The documented corner case: an upward tail step to cover
        # infinite-intensity samples that beat every finite one.
        ys = ys[:-1]
    assert all(b <= a + 1e-9 for a, b in zip(ys, ys[1:]))


@settings(max_examples=60, deadline=None)
@given(sample_cloud())
def test_estimate_is_monotone_none_above_apex_value(samples):
    roofline = fit_metric_roofline(samples)
    apex_value = roofline.apex.y
    tail = roofline.function.breakpoints[-1].y
    limit = max(apex_value, tail)
    for intensity in (0.0, 0.1, 1.0, 10.0, 1e3, 1e9, math.inf):
        assert roofline.estimate(intensity) <= limit + 1e-9 * max(1.0, limit)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(sample_strategy(metric="a"), min_size=2, max_size=30),
    st.lists(sample_strategy(metric="b"), min_size=2, max_size=30),
)
def test_ensemble_estimate_is_min_of_metrics(a_samples, b_samples):
    training = SampleSet(a_samples + b_samples)
    model = SpireModel.train(training)
    estimate = model.estimate(training)
    assert estimate.throughput == min(estimate.per_metric.values())
    for metric, value in estimate.per_metric.items():
        group = training.for_metric(metric)
        expected = time_weighted_average(
            [model.roofline(metric).estimate(s.intensity) for s in group],
            [s.time for s in group],
        )
        assert value == expected


@settings(max_examples=40, deadline=None)
@given(sample_cloud(min_size=2))
def test_serialization_preserves_estimates(samples):
    roofline = fit_metric_roofline(samples)
    from repro.core.roofline import MetricRoofline

    clone = MetricRoofline.from_dict(roofline.to_dict())
    for s in samples[:10]:
        assert clone.estimate(s.intensity) == roofline.estimate(s.intensity)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=100.0),
            st.floats(min_value=0.1, max_value=4.9),
        ),
        min_size=0,
        max_size=7,
    )
)
def test_right_fit_matches_exhaustive_optimum(points):
    """Dijkstra over the segment graph finds the globally optimal valid fit
    (verified against brute force over all Pareto-subset chains)."""
    from itertools import combinations

    from repro.core.right_fit import fit_right_region
    from repro.geometry.pareto import pareto_front

    apex = (1.0, 5.0)
    result = fit_right_region(points, apex)

    front = pareto_front(list(points) + [apex])
    last = len(front) - 1
    apex_y = front[last][1]

    def chain_error(subset):
        error = sum(
            (front[subset[0]][1] - front[k][1]) ** 2 for k in range(subset[0])
        )
        previous_slope = 0.0
        for a, b in zip(subset, subset[1:]):
            (ax, ay), (bx, by) = front[a], front[b]
            slope = (by - ay) / (bx - ax)
            if slope > previous_slope + 1e-12:
                return None
            for k in range(a + 1, b):
                value = ay + (front[k][0] - ax) * slope
                gap = value - front[k][1]
                if gap < -1e-9:
                    return None
                error += gap**2
            previous_slope = slope
        reached = subset[-1]
        error += sum(
            (apex_y - front[k][1]) ** 2 for k in range(reached + 1, last)
        )
        return error

    best = min(
        (
            error
            for r in range(1, len(front) + 1)
            for subset in combinations(range(len(front)), r)
            if (error := chain_error(subset)) is not None
        ),
        default=0.0,
    )
    assert result.total_error == pytest.approx(best, abs=1e-6)
