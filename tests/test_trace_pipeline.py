"""Unit tests for the trace-driven pipeline and its kernels."""

import pytest

from repro.errors import ConfigError
from repro.trace import (
    PipelineConfig,
    TracePipeline,
    make_kernel_trace,
)
from repro.trace.uops import MicroOp


def run_kernel(kernel, intensity, n=15_000, config=None, seed=1):
    pipeline = TracePipeline(config=config)
    return pipeline.execute(make_kernel_trace(kernel, n, intensity, seed=seed))


class TestMicroOp:
    def test_valid_kinds_only(self):
        with pytest.raises(ConfigError):
            MicroOp("teleport")

    def test_memory_needs_address(self):
        with pytest.raises(ConfigError):
            MicroOp("load", dest=1)

    def test_branch_writes_nothing(self):
        with pytest.raises(ConfigError):
            MicroOp("branch", dest=1)

    def test_latency_lookup(self):
        assert MicroOp("div", dest=1).latency == 20
        assert MicroOp("alu", dest=1).latency == 1


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            PipelineConfig(width=0)
        with pytest.raises(ConfigError):
            PipelineConfig(rob_size=2, width=4)
        with pytest.raises(ConfigError):
            PipelineConfig(redirect_penalty=-1)


class TestKernels:
    def test_trace_length(self):
        trace = make_kernel_trace("mixed", 1000, 0.5)
        assert len(trace) == 1000

    def test_bad_kernel_rejected(self):
        with pytest.raises(ConfigError):
            make_kernel_trace("quantum", 100, 0.5)

    def test_bad_intensity_rejected(self):
        with pytest.raises(ConfigError):
            make_kernel_trace("stream", 100, 1.5)

    def test_deterministic_for_seed(self):
        a = make_kernel_trace("branchy", 500, 0.5, seed=3)
        b = make_kernel_trace("branchy", 500, 0.5, seed=3)
        assert a == b


class TestPipelineBasics:
    def test_ipc_bounded_by_width(self):
        counters = run_kernel("compute", 0.0)
        assert 0 < counters.ipc <= PipelineConfig().width

    def test_counters_monotone_accumulate(self):
        pipeline = TracePipeline()
        pipeline.execute(make_kernel_trace("mixed", 2000, 0.5))
        first = pipeline.snapshot()
        pipeline.execute(make_kernel_trace("mixed", 2000, 0.5, seed=2))
        second = pipeline.snapshot()
        assert second.instructions == first.instructions + 2000
        assert second.cycles >= first.cycles

    def test_snapshot_is_a_copy(self):
        pipeline = TracePipeline()
        snap = pipeline.snapshot()
        pipeline.execute(make_kernel_trace("compute", 100, 0.0))
        assert snap.instructions == 0

    def test_delta_from(self):
        pipeline = TracePipeline()
        before = pipeline.snapshot()
        pipeline.execute(make_kernel_trace("compute", 500, 0.0))
        delta = pipeline.snapshot().delta_from(before)
        assert delta["trace.instructions"] == 500.0

    def test_stall_counters_bounded_by_cycles(self):
        counters = run_kernel("pointer_chase", 0.6)
        assert counters.rob_stall_cycles <= counters.cycles
        assert counters.redirect_stall_cycles <= counters.cycles


class TestBottleneckBehaviour:
    """Each kernel's knob must move IPC and its matching counter."""

    def test_ilp_knob(self):
        wide = run_kernel("compute", 0.0)
        narrow = run_kernel("compute", 1.0)
        assert narrow.ipc < wide.ipc / 2

    def test_branch_knob(self):
        predictable = run_kernel("branchy", 0.0)
        chaotic = run_kernel("branchy", 1.0)
        assert predictable.branch_mispredicts < chaotic.branch_mispredicts / 10
        assert chaotic.ipc < predictable.ipc

    def test_memory_knob(self):
        resident = run_kernel("pointer_chase", 0.0, n=30_000)
        chasing = run_kernel("pointer_chase", 0.9, n=30_000)
        assert chasing.l3_misses > resident.l3_misses * 5
        assert chasing.ipc < resident.ipc / 3

    def test_memory_depth_monotone(self):
        previous_ipc = float("inf")
        for intensity in (0.0, 0.4, 0.8):
            counters = run_kernel("pointer_chase", intensity, n=30_000)
            assert counters.ipc < previous_ipc
            previous_ipc = counters.ipc

    def test_divider_knob(self):
        clean = run_kernel("divider", 0.0)
        divy = run_kernel("divider", 1.0)
        assert divy.divides > clean.divides
        assert divy.ipc < clean.ipc

    def test_stream_faster_than_chase(self):
        stream = run_kernel("stream", 0.9, n=30_000)
        chase = run_kernel("pointer_chase", 0.9, n=30_000)
        # Independent loads overlap; dependent loads serialize.
        assert stream.ipc > chase.ipc * 2

    def test_redirect_penalty_matters(self):
        cheap = run_kernel(
            "branchy", 1.0, config=PipelineConfig(redirect_penalty=0)
        )
        costly = run_kernel(
            "branchy", 1.0, config=PipelineConfig(redirect_penalty=30)
        )
        assert costly.cycles > cheap.cycles

    def test_rob_size_matters_for_memory(self):
        small = run_kernel(
            "stream", 0.9, config=PipelineConfig(rob_size=8)
        )
        large = run_kernel(
            "stream", 0.9, config=PipelineConfig(rob_size=256)
        )
        # A bigger window overlaps more independent misses.
        assert large.ipc > small.ipc


class TestInstructionCache:
    def test_small_code_footprint_hits(self):
        counters = run_kernel("codebloat", 0.0)
        assert counters.icache_misses < 300  # compulsory only

    def test_large_code_footprint_thrashes(self):
        counters = run_kernel("codebloat", 1.0)
        assert counters.icache_misses > 10_000
        assert counters.icache_stall_cycles > 0

    def test_icache_knob_monotone_in_ipc(self):
        hot = run_kernel("codebloat", 0.0)
        cold = run_kernel("codebloat", 1.0)
        assert cold.ipc < hot.ipc / 3

    def test_icache_penalty_matters(self):
        cheap = run_kernel(
            "codebloat", 1.0, config=PipelineConfig(icache_miss_penalty=1)
        )
        costly = run_kernel(
            "codebloat", 1.0, config=PipelineConfig(icache_miss_penalty=20)
        )
        assert costly.cycles > cheap.cycles

    def test_other_kernels_fit_in_icache(self):
        counters = run_kernel("compute", 0.5)
        assert counters.icache_misses < 10
