"""Unit tests for the gift-wrapped upper concave chain (Figure 5)."""

import random

import pytest

from repro.geometry.hull import upper_concave_chain


def chain_is_concave_down(chain):
    slopes = [
        (y1 - y0) / (x1 - x0)
        for (x0, y0), (x1, y1) in zip(chain, chain[1:])
        if x1 > x0
    ]
    return all(b <= a + 1e-9 for a, b in zip(slopes, slopes[1:]))


def chain_covers(chain, points):
    from repro.geometry.piecewise import PiecewiseLinear

    f = PiecewiseLinear(chain)
    return f.is_upper_bound_of(points)


class TestBasics:
    def test_single_point(self):
        chain = upper_concave_chain([(2.0, 3.0)])
        assert chain == [(0.0, 0.0), (2.0, 3.0)]

    def test_two_points_keeps_upper(self):
        chain = upper_concave_chain([(1.0, 1.0), (2.0, 4.0)])
        assert chain[-1] == (2.0, 4.0)
        assert chain_covers(chain, [(1.0, 1.0)])

    def test_collinear_points_collapse(self):
        chain = upper_concave_chain([(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
        assert chain == [(0.0, 0.0), (3.0, 3.0)]

    def test_interior_point_below_is_skipped(self):
        chain = upper_concave_chain([(1.0, 3.0), (2.0, 3.5), (3.0, 6.0)])
        assert (2.0, 3.5) not in chain

    def test_interior_point_above_is_kept(self):
        chain = upper_concave_chain([(1.0, 3.0), (3.0, 4.0)])
        assert (1.0, 3.0) in chain

    def test_default_target_is_max_y(self):
        chain = upper_concave_chain([(1.0, 1.0), (2.0, 9.0), (3.0, 4.0)])
        assert chain[-1] == (2.0, 9.0)

    def test_explicit_target_bounds_chain(self):
        points = [(1.0, 1.0), (2.0, 9.0), (3.0, 4.0)]
        chain = upper_concave_chain(points, target=(2.0, 9.0))
        assert chain[-1] == (2.0, 9.0)

    def test_points_right_of_target_ignored(self):
        chain = upper_concave_chain(
            [(1.0, 2.0), (5.0, 1.0)], target=(2.0, 4.0)
        )
        assert chain[-1] == (2.0, 4.0)

    def test_empty_points_with_target(self):
        chain = upper_concave_chain([], target=(4.0, 2.0))
        assert chain == [(0.0, 0.0), (4.0, 2.0)]

    def test_empty_points_without_target_rejected(self):
        with pytest.raises(ValueError):
            upper_concave_chain([])

    def test_target_left_of_anchor_rejected(self):
        with pytest.raises(ValueError):
            upper_concave_chain([(1.0, 1.0)], anchor=(2.0, 0.0), target=(1.0, 1.0))

    def test_anchor_equals_target(self):
        assert upper_concave_chain([], target=(0.0, 0.0)) == [(0.0, 0.0)]

    def test_vertical_chain_when_target_shares_anchor_x(self):
        chain = upper_concave_chain([], anchor=(0.0, 0.0), target=(0.0, 5.0))
        assert chain == [(0.0, 0.0), (0.0, 5.0)]


class TestInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_clouds(self, seed):
        rng = random.Random(seed)
        points = [
            (rng.uniform(0.1, 100.0), rng.uniform(0.1, 5.0)) for _ in range(120)
        ]
        target = max(points, key=lambda p: (p[1], -p[0]))
        covered = [p for p in points if p[0] <= target[0]]
        chain = upper_concave_chain(covered, target=target)
        assert chain[0] == (0.0, 0.0)
        assert chain[-1] == target
        assert chain_is_concave_down(chain)
        assert chain_covers(chain, covered)
        xs = [x for x, _ in chain]
        assert xs == sorted(xs)

    def test_increasing_values(self):
        rng = random.Random(99)
        points = [(rng.uniform(0.1, 50.0), rng.uniform(0.1, 4.0)) for _ in range(60)]
        target = max(points, key=lambda p: (p[1], -p[0]))
        chain = upper_concave_chain(
            [p for p in points if p[0] <= target[0]], target=target
        )
        ys = [y for _, y in chain]
        assert ys == sorted(ys)
