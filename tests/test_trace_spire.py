"""Integration: SPIRE applied unmodified to the trace substrate.

The architecture-independence claim, demonstrated end to end: samples
collected from the cycle-accounting trace pipeline (a machine with
entirely different internals from :mod:`repro.uarch`) train a SPIRE
ensemble that identifies each kernel's planted bottleneck.
"""

import pytest

from repro.core import SpireModel
from repro.core.sample import SampleSet
from repro.errors import ConfigError
from repro.trace import TRACE_EVENT_AREAS, collect_trace_samples


@pytest.fixture(scope="module")
def trace_model():
    pooled = SampleSet()
    for seed, kernel in enumerate(
        ("stream", "pointer_chase", "branchy", "compute", "divider", "mixed")
    ):
        run = collect_trace_samples(
            kernel, n_uops=24_000, window_uops=2_000, seed=seed
        )
        pooled.extend(run.samples)
    return SpireModel.train(pooled), pooled


class TestCollection:
    def test_samples_cover_all_metrics(self, trace_model):
        _, pooled = trace_model
        assert set(pooled.metrics()) == set(TRACE_EVENT_AREAS)

    def test_validation(self):
        with pytest.raises(ConfigError):
            collect_trace_samples("stream", n_uops=10, window_uops=100)

    def test_run_reports_ipc(self):
        run = collect_trace_samples(
            "compute", n_uops=8_000, window_uops=2_000, intensities=(0.0,)
        )
        assert 0 < run.ipc <= 4.0
        assert run.final_counters["trace.instructions"] == 8_000


class TestTrainedModel:
    def test_one_roofline_per_metric(self, trace_model):
        model, pooled = trace_model
        assert set(model.metrics) == set(pooled.metrics())

    def test_upper_bound_everywhere(self, trace_model):
        model, pooled = trace_model
        for metric in model.metrics:
            assert model.roofline(metric).is_upper_bound_of_training_data()

    @pytest.mark.parametrize(
        "kernel,intensity,expected_area,expected_metrics",
        [
            ("pointer_chase", 0.9, "Memory",
             ("trace.memory_wait_cycles", "trace.l3_misses", "trace.l1_misses")),
            ("branchy", 1.0, "Bad Speculation",
             ("trace.branch_mispredicts", "trace.redirect_stall_cycles")),
            ("divider", 1.0, "Core",
             ("trace.divider_busy_cycles", "trace.divides")),
        ],
    )
    def test_bottleneck_identified(
        self, trace_model, kernel, intensity, expected_area, expected_metrics
    ):
        model, _ = trace_model
        run = collect_trace_samples(
            kernel,
            n_uops=16_000,
            window_uops=2_000,
            intensities=(intensity,),
            seed=99,
        )
        report = model.analyze(
            run.samples,
            workload=kernel,
            top_k=5,
            metric_areas=TRACE_EVENT_AREAS,
        )
        top_metrics = [e.metric for e in report.top(5)]
        assert any(m in top_metrics for m in expected_metrics), top_metrics
        areas = [report.area_of(m) for m in top_metrics]
        assert expected_area in areas

    def test_estimates_track_measured_ipc(self, trace_model):
        model, _ = trace_model
        for kernel, intensity in (("compute", 0.0), ("pointer_chase", 0.9)):
            run = collect_trace_samples(
                kernel, n_uops=16_000, window_uops=2_000,
                intensities=(intensity,), seed=7,
            )
            estimate = model.estimate(run.samples)
            # The bound lands within a factor of ~3 of measured IPC (same
            # order), distinguishing a 2-IPC kernel from a 0.02-IPC one.
            assert estimate.throughput < max(3.0 * run.ipc, run.ipc + 1.0)
            assert estimate.throughput > 0.2 * run.ipc


class TestFrontEndKernel:
    def test_codebloat_flagged_front_end(self, trace_model):
        model, pooled = trace_model
        # The shared model was trained without codebloat; train a fresh one
        # including it for this probe.
        fresh = SampleSet(list(pooled))
        run = collect_trace_samples(
            "codebloat", n_uops=24_000, window_uops=2_000, seed=41
        )
        fresh.extend(run.samples)
        model_with_fe = SpireModel.train(fresh)
        probe = collect_trace_samples(
            "codebloat", n_uops=12_000, window_uops=2_000,
            intensities=(1.0,), seed=55,
        )
        report = model_with_fe.analyze(
            probe.samples, workload="codebloat", top_k=5,
            metric_areas=TRACE_EVENT_AREAS,
        )
        top = [e.metric for e in report.top(5)]
        assert any("icache" in metric for metric in top), top
