"""Unit tests for phase-resolved analysis."""

import pytest

from repro.core.ensemble import SpireModel
from repro.core.phases import phase_profile
from repro.core.sample import Sample, SampleSet
from repro.errors import EstimationError


def sample(metric, intensity, throughput, work=1000.0):
    return Sample(
        metric, time=work / throughput, work=work, metric_count=work / intensity
    )


@pytest.fixture
def model(two_metric_sampleset):
    return SpireModel.train(two_metric_sampleset)


def phased_workload():
    """First half: stall-bound (low I_stalls); second half: dsb-bound."""
    samples = SampleSet()
    for _ in range(20):
        samples.add(sample("stalls", 2.0, 0.8))     # bound ~1.0
        samples.add(sample("dsb_uops", 2.0, 0.8))   # bound ~2.4
    for _ in range(20):
        samples.add(sample("stalls", 40.0, 0.4))    # bound ~3.5
        samples.add(sample("dsb_uops", 30.0, 0.4))  # bound ~0.36
    return samples


class TestPhaseProfile:
    def test_detects_phase_transition(self, model):
        profile = phase_profile(model, phased_workload(), chunks=4)
        assert not profile.is_stable
        transitions = profile.transitions()
        assert len(transitions) == 1
        _, before, after = transitions[0]
        assert before == "stalls"
        assert after == "dsb_uops"

    def test_stable_run(self, model):
        samples = SampleSet()
        for _ in range(40):
            samples.add(sample("stalls", 2.0, 0.8))
            samples.add(sample("dsb_uops", 2.0, 0.8))
        profile = phase_profile(model, samples, chunks=4)
        assert profile.is_stable
        assert profile.transitions() == []

    def test_chunk_count(self, model):
        profile = phase_profile(model, phased_workload(), chunks=5)
        assert len(profile.phases) == 5
        assert [p.index for p in profile.phases] == list(range(5))

    def test_every_sample_used_once(self, model):
        workload = phased_workload()
        profile = phase_profile(model, workload, chunks=4)
        assert sum(p.sample_count for p in profile.phases) == len(workload)

    def test_bound_range(self, model):
        profile = phase_profile(model, phased_workload(), chunks=4)
        lo, hi = profile.bound_range()
        assert lo < hi

    def test_render(self, model):
        text = phase_profile(model, phased_workload(), chunks=4).render()
        assert "transition" in text
        assert "phased" in text

    def test_validation(self, model):
        with pytest.raises(EstimationError):
            phase_profile(model, phased_workload(), chunks=1)
        tiny = SampleSet([sample("stalls", 2.0, 1.0)])
        with pytest.raises(EstimationError):
            phase_profile(model, tiny, chunks=4)

    def test_unknown_metrics_dropped(self, model):
        workload = phased_workload()
        for _ in range(10):
            workload.add(sample("unknown", 1.0, 1.0))
        profile = phase_profile(model, workload, chunks=4)
        assert sum(p.sample_count for p in profile.phases) == 80  # knowns only
