"""The serving layer: fused batching parity, registry, backpressure, HTTP.

The load-bearing property is the micro-batcher's bit-identity contract:
whatever requests arrive, however they are partitioned into batches,
every response must equal — to the bit — what that request would get
from :meth:`SpireModel.estimate` evaluated alone.  Hypothesis drives
arbitrary request mixes (covered/uncovered metrics, zero counts that
produce infinite intensity, empty requests) through arbitrary batch
splits and asserts exact equality.  The rest covers the registry's
packed-artifact path (zero-copy mmap, LRU eviction, corrupt-on-reload
quarantine), the backpressure policies, guard degradation, and the HTTP
front door end to end over real sockets.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SpireModel, TrainOptions
from repro.core.columns import SampleArray
from repro.errors import (
    DataError,
    DegradedDataWarning,
    EstimationError,
    ServeOverloadError,
)
from repro.guard.dispatch import (
    GUARDED_KERNELS,
    GuardConfig,
    health_report,
    inject_divergence,
    reset_guards,
)
from repro.serve import (
    MicroBatcher,
    ModelRegistry,
    ServeConfig,
    SpireServer,
    batch_estimate,
    map_model,
    pack_model,
)

GUARD_ENV_PREFIXES = ("SPIRE_GUARD", "SPIRE_GUARDRAIL", "SPIRE_SCALAR_FALLBACK")

METRICS = [f"m.{i}" for i in range(5)]


@pytest.fixture(autouse=True)
def fresh_guards(monkeypatch):
    for name in list(os.environ):
        if name.startswith(GUARD_ENV_PREFIXES):
            monkeypatch.delenv(name, raising=False)
    reset_guards()
    yield
    reset_guards()


def _train_model(metrics=METRICS, seed=7) -> SpireModel:
    rng = random.Random(seed)
    records = []
    for index, metric in enumerate(metrics):
        peak = 2.0 + index
        for _ in range(40):
            x = rng.uniform(0.25, 64.0)
            y = min(x, peak) * rng.uniform(0.3, 1.0)
            t = rng.uniform(1.0, 8.0)
            records.append(
                {
                    "metric": metric,
                    "time": t,
                    "work": y * t,
                    "metric_count": (y * t) / x,
                }
            )
    array = SampleArray.from_records(records, validate=True)
    return SpireModel.train(
        array.to_sample_set(), TrainOptions(min_samples_per_metric=1)
    )


@pytest.fixture(scope="module")
def model() -> SpireModel:
    return _train_model()


def _array_from_rows(rows) -> SampleArray:
    names = [name for name, _, _, _ in rows]
    times = [t for _, t, _, _ in rows]
    works = [w for _, _, w, _ in rows]
    counts = [c for _, _, _, c in rows]
    return SampleArray.from_lists(names, times, works, counts)


def _reference(model: SpireModel, array: SampleArray):
    try:
        return model.estimate(array.to_sample_set())
    except EstimationError as exc:
        return exc


def _assert_identical(got, want) -> None:
    """Bit-for-bit: values, key order, and error text all match."""
    if isinstance(want, EstimationError):
        assert isinstance(got, EstimationError)
        assert str(got) == str(want)
        return
    assert isinstance(got, type(want))
    assert got.per_metric == want.per_metric
    assert list(got.per_metric) == list(want.per_metric)
    assert got.sample_counts == want.sample_counts
    assert got.skipped_metrics == want.skipped_metrics
    assert got.throughput == want.throughput
    assert got.limiting_metric == want.limiting_metric


# ---------------------------------------------------------------------------
# batch_estimate: fused kernel parity
# ---------------------------------------------------------------------------

_finite = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)
_count = st.one_of(st.just(0.0), _finite)  # 0 metric_count => intensity inf
_row = st.tuples(
    st.sampled_from(METRICS + ["uncovered.a", "uncovered.b"]),
    _finite,
    _finite,
    _count,
)
_request = st.lists(_row, min_size=0, max_size=7)
_requests = st.lists(_request, min_size=1, max_size=8)


class TestBatchEstimateParity:
    @given(requests=_requests)
    @settings(max_examples=60, deadline=None)
    def test_fused_matches_per_request(self, requests):
        model = _train_model()
        reset_guards(GuardConfig(check_rate=0))  # pure fast path
        arrays = [_array_from_rows(rows) for rows in requests]
        results = batch_estimate(model, arrays)
        assert len(results) == len(arrays)
        for got, array in zip(results, arrays):
            _assert_identical(got, _reference(model, array))

    @given(requests=_requests)
    @settings(max_examples=30, deadline=None)
    def test_guarded_every_call_stays_clean(self, requests):
        model = _train_model()
        reset_guards(GuardConfig(check_rate=1))  # oracle checks every batch
        arrays = [_array_from_rows(rows) for rows in requests]
        results = batch_estimate(model, arrays)
        for got, array in zip(results, arrays):
            _assert_identical(got, _reference(model, array))
        health = health_report()
        assert not health.divergences
        assert health.kernels["serve.batch_estimate"].checks >= 1

    def test_kernel_is_registered(self):
        assert "serve.batch_estimate" in GUARDED_KERNELS

    def test_empty_request_fails_alone(self, model):
        reset_guards(GuardConfig(check_rate=0))
        good = _array_from_rows([("m.0", 1.0, 2.0, 1.0)])
        empty = SampleArray.from_lists([], [], [], [])
        results = batch_estimate(model, [empty, good])
        assert isinstance(results[0], EstimationError)
        assert "empty" in str(results[0])
        _assert_identical(results[1], _reference(model, good))

    def test_uncovered_request_fails_alone(self, model):
        reset_guards(GuardConfig(check_rate=0))
        good = _array_from_rows([("m.1", 1.0, 2.0, 1.0)])
        alien = _array_from_rows([("uncovered.a", 1.0, 2.0, 1.0)])
        results = batch_estimate(model, [alien, good])
        assert isinstance(results[0], EstimationError)
        assert "covered" in str(results[0])
        _assert_identical(results[1], _reference(model, good))

    def test_injected_divergence_degrades_to_per_request(self, model):
        reset_guards(GuardConfig(check_rate=1))
        inject_divergence("serve.batch_estimate")
        arrays = [
            _array_from_rows([("m.0", 1.0, 2.0, 1.0), ("m.1", 2.0, 3.0, 1.5)]),
            _array_from_rows([("m.2", 1.0, 4.0, 2.0)]),
        ]
        with pytest.warns(DegradedDataWarning, match="injected divergence"):
            first = batch_estimate(model, arrays)
        health = health_report()
        assert health.divergences and health.divergences[0].injected
        assert "serve.batch_estimate" in health.tripped_kernels
        # Tripped: the degraded path serves per-request results, still
        # identical to the reference.
        second = batch_estimate(model, arrays)
        for results in (first, second):
            for got, array in zip(results, arrays):
                _assert_identical(got, _reference(model, array))


# ---------------------------------------------------------------------------
# registry: packed artifacts, mmap, LRU
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_pack_map_roundtrip_is_zero_copy(self, model, tmp_path):
        path = pack_model(model, tmp_path / "m.spm")
        mapped, mapping = map_model(path)
        try:
            assert sorted(mapped.metrics) == sorted(model.metrics)
            probe = np.asarray([0.3, 1.7, 42.0, np.inf])
            for metric in model.metrics:
                want = model.roofline(metric).estimate_batch(
                    probe.copy(), validated=True
                )
                got = mapped.roofline(metric).estimate_batch(
                    probe.copy(), validated=True
                )
                assert got.tolist() == want.tolist()
                bx, by, _ = mapped.roofline(metric).function._evaluation_arrays()
                assert not bx.flags.owndata  # views into the mapping
                assert not by.flags.owndata
        finally:
            del mapped
            try:
                mapping.close()
            except BufferError:
                pass

    def test_lru_eviction(self, model, tmp_path):
        registry = ModelRegistry(tmp_path, capacity=2)
        for name in ("a", "b", "c"):
            registry.install(name, model)
            registry.get(name)
        snapshot = registry.snapshot()
        assert snapshot["occupancy"] == 2
        assert snapshot["evictions"] == 1
        assert snapshot["resident"] == ["b", "c"]  # a was oldest
        registry.get("a")  # remaps from disk, evicting b
        assert registry.snapshot()["resident"] == ["c", "a"]
        registry.close()
        assert registry.snapshot()["occupancy"] == 0

    def test_corrupt_artifact_on_reload_is_quarantined(self, model, tmp_path):
        registry = ModelRegistry(tmp_path, capacity=2)
        path = registry.install("victim", model)
        registry.get("victim")
        registry.evict("victim")
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # flip a payload byte: checksum must catch it
        path.write_bytes(bytes(raw))
        with pytest.raises(DataError, match="checksum mismatch"):
            registry.get("victim")
        assert registry.snapshot()["verify_failures"] == 1
        assert not path.exists()  # moved, never served
        quarantined = list((tmp_path / ".quarantine").iterdir())
        assert len(quarantined) == 1
        assert health_report().artifacts_quarantined

    def test_model_names_are_sandboxed(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for name in ("", "a/b", "a\\b", ".hidden"):
            with pytest.raises(DataError, match="invalid model name"):
                registry.path_for(name)


# ---------------------------------------------------------------------------
# micro-batcher: coalescing, interleavings, backpressure
# ---------------------------------------------------------------------------


def _run(coro):
    return asyncio.run(coro)


class TestMicroBatcher:
    def test_interleaved_submissions_match_reference(self, model):
        reset_guards(GuardConfig(check_rate=0))
        second = _train_model(metrics=["n.0", "n.1"], seed=11)
        models = {"first": model, "second": second}
        rng = random.Random(3)
        plan = []
        for index in range(40):
            name = rng.choice(["first", "second"])
            pool = METRICS if name == "first" else ["n.0", "n.1"]
            rows = [
                (
                    rng.choice(pool + ["uncovered.z"]),
                    rng.uniform(0.5, 4.0),
                    rng.uniform(0.5, 8.0),
                    rng.choice([0.0, rng.uniform(0.1, 8.0)]),
                )
                for _ in range(rng.randint(1, 6))
            ]
            plan.append((name, _array_from_rows(rows)))

        async def drive():
            batcher = MicroBatcher(
                lambda name: models[name], max_batch=8, window=0.01
            )
            try:

                async def one(name, array, delay):
                    await asyncio.sleep(delay)
                    try:
                        return await batcher.submit(name, array)
                    except EstimationError as exc:
                        return exc

                return await asyncio.gather(
                    *(
                        one(name, array, (i % 5) * 0.003)
                        for i, (name, array) in enumerate(plan)
                    )
                )
            finally:
                await batcher.close()

        results = _run(drive())
        for (name, array), got in zip(plan, results):
            _assert_identical(got, _reference(models[name], array))

    def test_full_queue_rejects_with_retry_after(self, model):
        async def drive():
            blocked = asyncio.Event()

            def resolve(name):
                return model

            batcher = MicroBatcher(
                resolve, max_batch=64, window=30.0, queue_limit=2
            )
            array = _array_from_rows([("m.0", 1.0, 2.0, 1.0)])
            first = asyncio.ensure_future(batcher.submit("m", array))
            second = asyncio.ensure_future(batcher.submit("m", array))
            await asyncio.sleep(0.05)  # both sit waiting out the window
            with pytest.raises(ServeOverloadError) as excinfo:
                await batcher.submit("m", array)
            assert excinfo.value.retry_after > 0
            assert not excinfo.value.shed
            for future in (first, second):
                future.cancel()
            await batcher.close()
            del blocked

        _run(drive())

    def test_oldest_policy_sheds_first_request(self, model):
        reset_guards(GuardConfig(check_rate=0))

        async def drive():
            batcher = MicroBatcher(
                lambda name: model,
                max_batch=64,
                window=0.2,
                queue_limit=1,
                load_shed="oldest",
            )
            array = _array_from_rows([("m.0", 1.0, 2.0, 1.0)])
            first = asyncio.ensure_future(batcher.submit("m", array))
            await asyncio.sleep(0.01)
            second = asyncio.ensure_future(batcher.submit("m", array))
            with pytest.raises(ServeOverloadError) as excinfo:
                await first
            assert excinfo.value.shed
            result = await second
            _assert_identical(result, _reference(model, array))
            await batcher.close()

        _run(drive())

    def test_closed_batcher_refuses(self, model):
        async def drive():
            batcher = MicroBatcher(lambda name: model)
            await batcher.close()
            with pytest.raises(ServeOverloadError):
                await batcher.submit(
                    "m", _array_from_rows([("m.0", 1.0, 2.0, 1.0)])
                )

        _run(drive())


# ---------------------------------------------------------------------------
# HTTP front door
# ---------------------------------------------------------------------------


async def _http(host, port, method, target, body=b"", content_type="application/json"):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()
        header = await reader.readuntil(b"\r\n\r\n")
        status = int(header.split(b" ", 2)[1])
        length = 0
        headers = {}
        for line in header.split(b"\r\n")[1:]:
            if b":" in line:
                key, value = line.split(b":", 1)
                headers[key.strip().lower().decode()] = value.strip().decode()
        length = int(headers.get("content-length", "0"))
        payload = json.loads((await reader.readexactly(length)).decode())
        return status, payload, headers
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _serve_config(tmp_path, **kwargs) -> ServeConfig:
    kwargs.setdefault("port", 0)
    kwargs.setdefault("store_dir", str(tmp_path / "store"))
    return ServeConfig(**kwargs)


class TestServer:
    def test_estimate_analyze_and_errors(self, model, tmp_path):
        reset_guards(GuardConfig(check_rate=0))
        config = _serve_config(tmp_path)
        server = SpireServer(config)
        server.registry.install("demo", model)
        array = _array_from_rows(
            [("m.0", 1.0, 2.0, 1.0), ("m.1", 2.0, 6.0, 1.5)]
        )
        want = model.estimate(array.to_sample_set())
        body = json.dumps(
            {
                "model": "demo",
                "samples": [
                    {"metric": "m.0", "time": 1.0, "work": 2.0,
                     "metric_count": 1.0},
                    {"metric": "m.1", "time": 2.0, "work": 6.0,
                     "metric_count": 1.5},
                ],
            }
        ).encode()

        async def drive():
            await server.start()
            host, port = config.host, server.port
            try:
                status, payload, _ = await _http(
                    host, port, "POST", "/v1/estimate", body
                )
                assert status == 200
                roundtrip = json.loads(json.dumps(want.per_metric))
                assert payload["per_metric"] == roundtrip
                assert payload["limiting_metric"] == want.limiting_metric

                status, payload, _ = await _http(
                    host, port, "POST", "/v1/analyze", body
                )
                assert status == 200
                assert [r["metric"] for r in payload["ranking"]]
                assert payload["measured_throughput"] is not None

                status, payload, _ = await _http(
                    host, port, "GET", "/v1/models"
                )
                assert status == 200 and payload["models"] == ["demo"]

                status, payload, _ = await _http(
                    host, port, "POST", "/v1/estimate",
                    json.dumps({"model": "ghost", "samples": []}).encode(),
                )
                assert status == 404

                status, payload, _ = await _http(
                    host, port, "POST", "/v1/estimate", b"{broken"
                )
                assert status == 400

                status, _, _ = await _http(host, port, "GET", "/nope")
                assert status == 404
            finally:
                await server.stop()

        _run(drive())

    def test_csv_body_and_health(self, model, tmp_path):
        reset_guards(GuardConfig(check_rate=0))
        # The CSV path serves perf events; train a model over them.
        perf_model = _train_model(metrics=["instructions", "cache-misses"])
        config = _serve_config(tmp_path)
        server = SpireServer(config)
        server.registry.install("perf", perf_model)
        csv = (
            "1.0,100,,instructions,1,100.0,,\n"
            "1.0,200,,cycles,1,100.0,,\n"
            "1.0,40,,cache-misses,1,100.0,,\n"
            "2.0,100,,instructions,1,100.0,,\n"
            "2.0,210,,cycles,1,100.0,,\n"
            "2.0,35,,cache-misses,1,100.0,,\n"
        ).encode()

        async def drive():
            await server.start()
            host, port = config.host, server.port
            try:
                status, payload, _ = await _http(
                    host, port, "POST", "/v1/estimate?model=perf", csv,
                    content_type="text/csv",
                )
                assert status == 200
                assert payload["model"] == "perf"
                assert payload["per_metric"]

                status, _, _ = await _http(
                    host, port, "POST", "/v1/estimate", csv,
                    content_type="text/csv",
                )
                assert status == 400  # model name must ride the query

                status, payload, _ = await _http(host, port, "GET", "/health")
                assert status == 200
                serve_state = payload["health"]["serve_state"]
                assert serve_state["requests"] >= 2
                assert serve_state["registry"]["occupancy"] == 1
                assert serve_state["batcher"]["enabled"]
                assert "render" in payload
            finally:
                await server.stop()

        _run(drive())

    def test_backpressure_maps_to_429(self, model, tmp_path):
        reset_guards(GuardConfig(check_rate=0))
        config = _serve_config(
            tmp_path, queue_limit=1, window=0.5, max_batch=64
        )
        server = SpireServer(config)
        server.registry.install("demo", model)
        body = json.dumps(
            {
                "model": "demo",
                "samples": [
                    {"metric": "m.0", "time": 1.0, "work": 2.0,
                     "metric_count": 1.0}
                ],
            }
        ).encode()

        async def drive():
            await server.start()
            host, port = config.host, server.port
            try:
                first = asyncio.ensure_future(
                    _http(host, port, "POST", "/v1/estimate", body)
                )
                await asyncio.sleep(0.1)  # parked in the batch window
                status, payload, headers = await _http(
                    host, port, "POST", "/v1/estimate", body
                )
                assert status == 429
                assert float(headers["retry-after"]) > 0
                assert server.stats.snapshot()["backpressure"]["rejected"] == 1
                status, _, _ = await first
                assert status == 200
            finally:
                await server.stop()

        _run(drive())

    def test_doctor_probe_reads_live_server(self, model, tmp_path):
        from repro.guard.doctor import probe_server, render_server_health

        reset_guards(GuardConfig(check_rate=0))
        config = _serve_config(tmp_path)
        server = SpireServer(config)
        server.registry.install("demo", model)

        async def drive():
            await server.start()
            url = f"http://{config.host}:{server.port}"
            try:
                loop = asyncio.get_running_loop()
                payload = await loop.run_in_executor(
                    None, probe_server, url
                )
                assert payload["ok"]
                text = render_server_health(payload)
                assert "serve registry" in text
            finally:
                await server.stop()

        _run(drive())


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestServeCli:
    def test_serve_runs_and_exits(self, model, tmp_path, capsys):
        from repro.cli import main
        from repro.io import save_model

        save_model(model, tmp_path / "demo.json")
        code = main(
            [
                "serve",
                "--model", f"demo={tmp_path / 'demo.json'}",
                "--store-dir", str(tmp_path / "store"),
                "--port", "0",
                "--max-runtime", "0.3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "installed model 'demo'" in out
        assert "serving 1 model(s)" in out

    def test_serve_rejects_malformed_model_spec(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["serve", "--model", "nope", "--store-dir", str(tmp_path)]
        )
        assert code == 2
        assert "name=path.json" in capsys.readouterr().err

    def test_doctor_probe_unreachable_server_fails_cleanly(self, capsys):
        from repro.cli import main

        code = main(["doctor", "--serve-url", "http://127.0.0.1:9"])
        assert code == 2
        assert "cannot probe server" in capsys.readouterr().err
