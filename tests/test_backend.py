"""Unit tests for the back-end execution model."""

import pytest

from repro.uarch.backend import BackendModel, port_activity_histogram
from repro.uarch.spec import WindowSpec


@pytest.fixture
def backend(machine):
    return BackendModel(machine)


class TestPortPressure:
    def test_port_uops_cover_all_ports(self, backend, machine):
        spec = WindowSpec(frac_loads=0.3, frac_stores=0.1, frac_branches=0.1)
        result = backend.evaluate(spec, 11_000.0, 10_000.0, base_cycles=2_750.0)
        assert set(result.port_uops) == {p.name for p in machine.ports}

    def test_loads_split_across_load_ports(self, backend):
        spec = WindowSpec(frac_loads=0.4, frac_stores=0.0, frac_branches=0.0)
        result = backend.evaluate(spec, 10_000.0, 10_000.0, base_cycles=2_500.0)
        assert result.port_uops["p2"] == pytest.approx(result.port_uops["p3"])
        assert result.port_uops["p2"] > 0

    def test_high_ilp_no_port_stalls(self, backend):
        spec = WindowSpec(ilp=8.0, frac_loads=0.2, frac_stores=0.05)
        result = backend.evaluate(spec, 10_000.0, 10_000.0, base_cycles=2_500.0)
        assert result.port_stall_cycles == pytest.approx(0.0, abs=1e-6)

    def test_low_ilp_stalls(self, backend):
        spec = WindowSpec(ilp=1.0)
        result = backend.evaluate(spec, 10_000.0, 10_000.0, base_cycles=2_500.0)
        assert result.port_stall_cycles > 0

    def test_lower_ilp_costs_more(self, backend):
        costs = []
        for ilp in (4.0, 2.0, 1.0):
            result = backend.evaluate(
                WindowSpec(ilp=ilp), 10_000.0, 10_000.0, base_cycles=2_500.0
            )
            costs.append(result.port_stall_cycles)
        assert costs == sorted(costs)


class TestDivider:
    def test_divider_occupancy(self, backend, machine):
        spec = WindowSpec(frac_divides=0.01)  # default 1.1 uops/instruction
        result = backend.evaluate(spec, 11_000.0, 10_000.0, base_cycles=2_750.0)
        assert result.divides == pytest.approx(100.0)
        assert result.divider_active_cycles == pytest.approx(
            100.0 * machine.divider_latency
        )
        assert 0 < result.divider_stall_cycles < result.divider_active_cycles

    def test_no_divides_no_divider(self, backend):
        result = backend.evaluate(
            WindowSpec(frac_divides=0.0), 10_000.0, 10_000.0, base_cycles=2_500.0
        )
        assert result.divider_active_cycles == 0.0


class TestVectorWidth:
    def test_mixing_requires_both_widths(self, backend):
        only_512 = WindowSpec(frac_vector_512=0.3, vector_width_mix=0.8)
        result = backend.evaluate(only_512, 10_000.0, 10_000.0, base_cycles=2_500.0)
        assert result.vw_mismatch_events == 0.0

    def test_mixing_generates_events_and_stalls(self, backend):
        spec = WindowSpec(
            frac_vector_256=0.15, frac_vector_512=0.15, vector_width_mix=0.8
        )
        result = backend.evaluate(spec, 10_000.0, 10_000.0, base_cycles=2_500.0)
        assert result.vw_mismatch_events > 0
        assert result.vw_stall_cycles > 0

    def test_vector_counts_by_width(self, backend):
        spec = WindowSpec(
            frac_vector_128=0.1, frac_vector_256=0.2, frac_vector_512=0.05
        )  # default 1.1 uops/instruction
        result = backend.evaluate(spec, 11_000.0, 10_000.0, base_cycles=2_750.0)
        assert result.vector_uops_128 == pytest.approx(1_000.0)
        assert result.vector_uops_256 == pytest.approx(2_000.0)
        assert result.vector_uops_512 == pytest.approx(500.0)


class TestPortActivityHistogram:
    def test_zero_inputs(self):
        assert port_activity_histogram(0.0, 0.0, 8) == (0.0, 0.0, 0.0)

    def test_buckets_sum_to_active_cycles(self):
        c1, c2, c3 = port_activity_histogram(5_000.0, 2_000.0, 8)
        assert c1 + c2 + c3 == pytest.approx(2_000.0)

    def test_low_occupancy_favors_one_port(self):
        c1, c2, c3 = port_activity_histogram(1_100.0, 1_000.0, 8)
        assert c1 > c2 > c3

    def test_high_occupancy_favors_many_ports(self):
        c1, c2, c3 = port_activity_histogram(6_000.0, 1_000.0, 8)
        assert c3 > c1

    def test_mean_capped_by_port_count(self):
        c1, c2, c3 = port_activity_histogram(1e9, 10.0, 4)
        assert c1 + c2 + c3 == pytest.approx(10.0)
