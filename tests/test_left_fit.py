"""Unit tests for the left-region fitting algorithm (paper Fig. 5)."""

import pytest

from repro.core.left_fit import fit_left_region
from repro.errors import FitError
from repro.geometry.piecewise import PiecewiseLinear


class TestFitLeftRegion:
    def test_starts_at_origin_ends_at_apex(self):
        bps = fit_left_region([(1.0, 1.0), (2.0, 3.0)], apex=(2.0, 3.0))
        assert bps[0].as_tuple() == (0.0, 0.0)
        assert bps[-1].as_tuple() == (2.0, 3.0)

    def test_covers_all_points(self):
        points = [(1.0, 2.0), (2.0, 2.5), (3.0, 4.0), (1.5, 1.0)]
        bps = fit_left_region(points, apex=(3.0, 4.0))
        f = PiecewiseLinear(bps)
        assert f.is_upper_bound_of(points)

    def test_increasing(self):
        points = [(0.5, 1.8), (1.0, 2.0), (2.0, 2.5), (3.0, 4.0)]
        bps = fit_left_region(points, apex=(3.0, 4.0))
        ys = [bp.y for bp in bps]
        assert ys == sorted(ys)

    def test_concave_down(self):
        points = [(0.5, 1.8), (1.0, 2.0), (2.0, 2.5), (3.0, 4.0)]
        bps = fit_left_region(points, apex=(3.0, 4.0))
        f = PiecewiseLinear(bps)
        slopes = f.slopes()
        assert all(b <= a + 1e-9 for a, b in zip(slopes, slopes[1:]))

    def test_rejects_points_right_of_apex(self):
        with pytest.raises(FitError, match="right of the apex"):
            fit_left_region([(5.0, 1.0)], apex=(2.0, 3.0))

    def test_rejects_points_above_apex(self):
        with pytest.raises(FitError, match="exceeds the apex"):
            fit_left_region([(1.0, 5.0)], apex=(2.0, 3.0))

    def test_rejects_negative_apex(self):
        with pytest.raises(FitError, match="first quadrant"):
            fit_left_region([], apex=(-1.0, 1.0))

    def test_degenerate_apex_at_origin(self):
        bps = fit_left_region([], apex=(0.0, 0.0))
        assert [bp.as_tuple() for bp in bps] == [(0.0, 0.0)]

    def test_degenerate_apex_on_y_axis(self):
        bps = fit_left_region([(0.0, 1.0)], apex=(0.0, 2.0))
        assert [bp.as_tuple() for bp in bps] == [(0.0, 0.0), (0.0, 2.0)]

    def test_no_points_gives_single_segment(self):
        bps = fit_left_region([], apex=(4.0, 2.0))
        assert [bp.as_tuple() for bp in bps] == [(0.0, 0.0), (4.0, 2.0)]

    def test_paper_figure5_shape(self):
        # A cloud where the highest slope from the origin picks an interior
        # point before reaching the apex, as Figure 5 illustrates.
        points = [(1.0, 2.0), (2.0, 2.2), (4.0, 3.0), (3.0, 1.0)]
        bps = fit_left_region(points, apex=(4.0, 3.0))
        tuples = [bp.as_tuple() for bp in bps]
        assert tuples[0] == (0.0, 0.0)
        assert (1.0, 2.0) in tuples  # steepest from origin
        assert tuples[-1] == (4.0, 3.0)
        assert (3.0, 1.0) not in tuples  # dominated interior point
