"""Unit tests for metric-direction detection and the trend fitting mode."""

import random

import pytest

from repro.core.direction import (
    MIXED,
    NEGATIVE_METRIC,
    POSITIVE_METRIC,
    detect_direction,
    spearman,
)
from repro.core.roofline import RooflineFitOptions, fit_metric_roofline
from repro.core.sample import Sample
from repro.errors import FitError


def sample(metric, intensity, throughput, work=1000.0):
    return Sample(
        metric, time=work / throughput, work=work, metric_count=work / intensity
    )


class TestSpearman:
    def test_perfect_positive(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert spearman([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_monotone_nonlinear_still_one(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        ys = [x**3 for x in xs]
        assert spearman(xs, ys) == pytest.approx(1.0)

    def test_constant_series_zero(self):
        assert spearman([1, 2, 3], [5, 5, 5]) == 0.0

    def test_short_series_zero(self):
        assert spearman([1, 2], [1, 2]) == 0.0

    def test_ties_handled(self):
        value = spearman([1, 1, 2, 2], [1, 2, 3, 4])
        assert -1.0 <= value <= 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1])

    def test_independent_near_zero(self):
        rng = random.Random(0)
        xs = [rng.random() for _ in range(500)]
        ys = [rng.random() for _ in range(500)]
        assert abs(spearman(xs, ys)) < 0.15


class TestDetectDirection:
    def test_rising_cloud_is_negative_metric(self, rng):
        points = []
        for _ in range(200):
            i = rng.uniform(1, 100)
            points.append((i, (4 * i / (i + 10)) * rng.uniform(0.6, 1.0)))
        assert detect_direction(points) == NEGATIVE_METRIC

    def test_falling_cloud_is_positive_metric(self, rng):
        points = []
        for _ in range(200):
            i = rng.uniform(1, 100)
            points.append((i, (12 / (3 + i)) * rng.uniform(0.6, 1.0)))
        assert detect_direction(points) == POSITIVE_METRIC

    def test_flat_noise_is_mixed(self, rng):
        points = [(rng.uniform(1, 100), rng.uniform(1, 2)) for _ in range(200)]
        assert detect_direction(points) == MIXED

    def test_too_few_points_mixed(self):
        assert detect_direction([(1.0, 1.0), (2.0, 2.0)]) == MIXED

    def test_infinite_points_ignored(self, rng):
        points = [(float("inf"), 1.0)] * 10
        assert detect_direction(points) == MIXED


class TestTrendFittingMode:
    def _rising_samples(self, rng, n=300):
        result = []
        for _ in range(n):
            i = rng.uniform(1, 100)
            p = (4 * i / (i + 10)) * rng.uniform(0.5, 1.0)
            result.append(sample("bp", i, p))
        return result

    def _falling_samples(self, rng, n=300):
        result = []
        for _ in range(n):
            i = rng.uniform(1, 100)
            p = (12 / (3 + i)) * rng.uniform(0.5, 1.0)
            result.append(sample("db", i, p))
        return result

    def test_mode_validation(self):
        with pytest.raises(FitError):
            RooflineFitOptions(direction_mode="sideways")
        with pytest.raises(FitError):
            RooflineFitOptions(direction_threshold=0.0)

    def test_apex_split_records_direction(self, rng):
        roofline = fit_metric_roofline(self._rising_samples(rng))
        assert roofline.direction == NEGATIVE_METRIC

    def test_trend_mode_fixes_bp1_defect(self, rng):
        """Paper §V: the right fit drops the bound for high intensities on a
        clearly negative metric; trend mode keeps it flat at the apex."""
        samples = self._rising_samples(rng)
        paper = fit_metric_roofline(
            samples, RooflineFitOptions(direction_mode="apex-split")
        )
        robust = fit_metric_roofline(
            samples, RooflineFitOptions(direction_mode="trend")
        )
        # The paper-mode tail drops below the apex; trend mode does not.
        assert paper.function.breakpoints[-1].y < paper.apex.y
        assert robust.function.breakpoints[-1].y == pytest.approx(robust.apex.y)
        assert robust.estimate(1e9) == pytest.approx(robust.apex.y)

    def test_trend_mode_flattens_positive_left_region(self, rng):
        samples = self._falling_samples(rng)
        robust = fit_metric_roofline(
            samples, RooflineFitOptions(direction_mode="trend")
        )
        assert robust.direction == POSITIVE_METRIC
        # Left of the apex the bound is flat at the apex level, not rising
        # from the origin.
        assert robust.estimate(robust.apex.x / 100.0) == pytest.approx(
            robust.apex.y
        )

    def test_trend_mode_still_upper_bound(self, rng):
        for samples in (self._rising_samples(rng), self._falling_samples(rng)):
            roofline = fit_metric_roofline(
                samples, RooflineFitOptions(direction_mode="trend")
            )
            assert roofline.is_upper_bound_of_training_data()

    def test_mixed_metric_falls_back_to_apex_split(self, rng):
        samples = [
            sample("m", rng.uniform(1, 100), rng.uniform(0.5, 2.0))
            for _ in range(200)
        ]
        paper = fit_metric_roofline(samples)
        robust = fit_metric_roofline(
            samples, RooflineFitOptions(direction_mode="trend")
        )
        assert robust.direction == MIXED
        assert robust.function == paper.function

    def test_direction_serialized(self, rng):
        from repro.core.roofline import MetricRoofline

        roofline = fit_metric_roofline(
            self._rising_samples(rng), RooflineFitOptions(direction_mode="trend")
        )
        clone = MetricRoofline.from_dict(roofline.to_dict())
        assert clone.direction == NEGATIVE_METRIC
