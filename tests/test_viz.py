"""Unit tests for the ASCII and SVG renderers."""

import math

import pytest

from repro.core.roofline import fit_metric_roofline
from repro.core.sample import Sample
from repro.errors import DataError
from repro.viz.ascii_plot import ascii_roofline, ascii_scatter
from repro.viz.svg import SvgPlot, render_roofline_svg


@pytest.fixture
def roofline(rng):
    samples = []
    for _ in range(100):
        intensity = rng.uniform(1.0, 100.0)
        throughput = min(3.0, intensity * 0.2) * rng.uniform(0.4, 1.0)
        samples.append(
            Sample("m", time=1000.0 / throughput, work=1000.0,
                   metric_count=1000.0 / intensity)
        )
    return fit_metric_roofline(samples)


class TestAsciiScatter:
    def test_renders_grid(self):
        text = ascii_scatter([(1.0, 1.0), (10.0, 2.0)], width=40, height=10)
        lines = text.splitlines()
        assert len(lines) == 13  # top rule + 10 rows + bottom rule + axis
        assert any("." in line for line in lines)

    def test_title_included(self):
        text = ascii_scatter([(1.0, 1.0)], title="hello")
        assert text.splitlines()[0] == "hello"

    def test_log_axis_label(self):
        text = ascii_scatter([(1.0, 1.0), (100.0, 2.0)], log_x=True)
        assert "(log)" in text

    def test_linear_axis(self):
        text = ascii_scatter([(0.0, 1.0), (10.0, 2.0)], log_x=False)
        assert "(log)" not in text

    def test_overlay_marker_present(self):
        text = ascii_scatter(
            [(1.0, 1.0), (100.0, 3.0)],
            overlay=[(1.0, 3.0), (100.0, 1.0)],
        )
        assert "#" in text

    def test_no_plottable_points_rejected(self):
        with pytest.raises(DataError):
            ascii_scatter([(-1.0, 1.0)], log_x=True)

    def test_infinite_points_dropped(self):
        text = ascii_scatter([(1.0, 1.0), (math.inf, 2.0)])
        assert text  # no crash


class TestAsciiRoofline:
    def test_contains_metric_name(self, roofline):
        assert "m" in ascii_roofline(roofline).splitlines()[0]

    def test_mentions_apex(self, roofline):
        assert "apex" in ascii_roofline(roofline)

    def test_downsampling(self, roofline):
        text = ascii_roofline(roofline, max_points=10)
        assert "#" in text


class TestSvg:
    def test_render_valid_document(self):
        plot = SvgPlot(title="t <x>")
        plot.add_scatter([(1.0, 1.0), (10.0, 2.0)], label="pts")
        plot.add_line([(1.0, 2.0), (10.0, 1.0)], label="fit")
        doc = plot.render()
        assert doc.startswith("<svg")
        assert doc.endswith("</svg>")
        assert "circle" in doc and "polyline" in doc
        assert "&lt;x&gt;" in doc  # escaped title

    def test_empty_plot_rejected(self):
        with pytest.raises(DataError):
            SvgPlot().render()

    def test_series_without_points_rejected(self):
        plot = SvgPlot(log_x=True)
        with pytest.raises(DataError):
            plot.add_scatter([(-5.0, 1.0)])

    def test_log_y_filters_nonpositive(self):
        plot = SvgPlot(log_y=True)
        plot.add_scatter([(1.0, 1.0), (2.0, 0.0)])
        assert len(plot.series[0].points) == 1

    def test_save(self, tmp_path):
        plot = SvgPlot()
        plot.add_scatter([(1.0, 1.0)])
        out = plot.save(tmp_path / "sub" / "plot.svg")
        assert out.exists()
        assert out.read_text().startswith("<svg")

    def test_render_roofline_svg(self, roofline, tmp_path):
        out = render_roofline_svg(roofline, tmp_path / "roof.svg")
        doc = out.read_text()
        assert "SPIRE roofline" in doc
        assert "training samples" in doc
