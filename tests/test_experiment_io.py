"""Unit tests for experiment archiving."""

import json

import pytest

from repro.core.ensemble import SpireModel
from repro.core.sample import Sample, SampleSet
from repro.errors import DataError
from repro.io.experiment import (
    archive_pipeline_result,
    load_experiment,
    save_experiment,
)


def sample(metric, intensity, throughput, work=1000.0):
    return Sample(
        metric, time=work / throughput, work=work, metric_count=work / intensity
    )


@pytest.fixture
def model(two_metric_sampleset):
    return SpireModel.train(two_metric_sampleset)


@pytest.fixture
def workload_samples():
    return {
        "alpha (v1)": SampleSet(
            [sample("stalls", 2.0, 1.0), sample("dsb_uops", 5.0, 1.0)]
        ),
        "beta/2": SampleSet([sample("stalls", 9.0, 2.0)]),
    }


class TestSaveLoad:
    def test_round_trip(self, model, workload_samples, tmp_path):
        directory = save_experiment(
            tmp_path / "run",
            model,
            workload_samples,
            metadata={"seed": 7},
            workload_info={"alpha (v1)": {"measured_ipc": 1.0}},
        )
        archive = load_experiment(directory)
        assert sorted(archive.model.metrics) == sorted(model.metrics)
        assert archive.workloads() == sorted(workload_samples)
        assert archive.metadata == {"seed": 7}
        assert archive.workload_info["alpha (v1)"]["measured_ipc"] == 1.0
        loaded = archive.samples_for("alpha (v1)")
        assert loaded.to_records() == workload_samples["alpha (v1)"].to_records()

    def test_unsafe_names_sanitized(self, model, workload_samples, tmp_path):
        directory = save_experiment(tmp_path / "run", model, workload_samples)
        files = {p.name for p in (directory / "samples").iterdir()}
        assert all("/" not in name for name in files)
        assert len(files) == 2

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DataError, match="manifest"):
            load_experiment(tmp_path)

    def test_bad_format_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "other/9"}')
        with pytest.raises(DataError, match="unknown archive format"):
            load_experiment(tmp_path)

    def test_corrupt_manifest_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{broken")
        with pytest.raises(DataError, match="invalid JSON"):
            load_experiment(tmp_path)

    def test_unknown_workload_lookup(self, model, workload_samples, tmp_path):
        archive = load_experiment(
            save_experiment(tmp_path / "run", model, workload_samples)
        )
        with pytest.raises(DataError):
            archive.samples_for("gamma")

    def test_manifest_is_json(self, model, workload_samples, tmp_path):
        directory = save_experiment(tmp_path / "run", model, workload_samples)
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["format"] == "spire-experiment/1"
        assert manifest["workloads"]["beta/2"]["samples"] == 1


class TestPipelineArchiving:
    def test_archive_full_experiment(self, small_experiment, tmp_path):
        directory = archive_pipeline_result(tmp_path / "exp", small_experiment)
        archive = load_experiment(directory)
        assert len(archive.workloads()) == 27
        assert archive.metadata["machine"] == "xeon-gold-6126"
        info = archive.workload_info["tnn"]
        assert info["role"] == "testing"
        assert info["tma_category"] == "Front-End"
        # A re-analysis from the archive matches the live result.
        from repro.counters.events import default_catalog

        report = archive.model.analyze(
            archive.samples_for("tnn"),
            top_k=5,
            metric_areas=default_catalog().areas(),
        )
        live = small_experiment.analyze("tnn", top_k=5)
        assert [e.metric for e in report.top(5)] == [
            e.metric for e in live.top(5)
        ]
