"""Unit tests for the SPIRE ensemble (training, estimation, Figure 4)."""

import pytest

from repro.core.ensemble import (
    SpireModel,
    TrainOptions,
    mean_absolute_bound_violation,
)
from repro.core.roofline import fit_metric_roofline
from repro.core.sample import Sample, SampleSet
from repro.errors import EstimationError, FitError


def sample(metric, intensity, throughput, work=1000.0):
    return Sample(
        metric,
        time=work / throughput,
        work=work,
        metric_count=work / intensity,
    )


@pytest.fixture
def model(two_metric_sampleset):
    return SpireModel.train(two_metric_sampleset)


class TestTraining:
    def test_one_roofline_per_metric(self, model, two_metric_sampleset):
        assert sorted(model.metrics) == sorted(two_metric_sampleset.metrics())
        assert len(model) == 2

    def test_empty_training_rejected(self):
        with pytest.raises(FitError):
            SpireModel.train(SampleSet())

    def test_min_samples_per_metric_filter(self):
        samples = SampleSet(
            [sample("rich", i, 1.0) for i in range(1, 10)]
            + [sample("poor", 5, 1.0)]
        )
        model = SpireModel.train(samples, TrainOptions(min_samples_per_metric=3))
        assert "rich" in model
        assert "poor" not in model

    def test_all_metrics_filtered_rejected(self):
        samples = SampleSet([sample("only", 5, 1.0)])
        with pytest.raises(FitError, match="min_samples_per_metric"):
            SpireModel.train(samples, TrainOptions(min_samples_per_metric=5))

    def test_train_accepts_iterables(self):
        model = SpireModel.train([sample("m", i, 1.0) for i in range(1, 6)])
        assert "m" in model

    def test_invalid_options(self):
        with pytest.raises(FitError):
            TrainOptions(min_samples_per_metric=0)

    def test_mismatched_roofline_key_rejected(self):
        r = fit_metric_roofline([sample("real", 4, 1.0), sample("real", 8, 2.0)])
        with pytest.raises(FitError):
            SpireModel({"wrong": r})

    def test_roofline_lookup(self, model):
        assert model.roofline("stalls").metric == "stalls"
        with pytest.raises(EstimationError):
            model.roofline("missing")

    def test_repr_mentions_units(self, model):
        assert "instructions/cycles" in repr(model)


class TestEstimation:
    def test_minimum_of_per_metric_averages(self, model):
        workload = SampleSet(
            [sample("stalls", 50, 1.0), sample("dsb_uops", 50, 1.0)]
        )
        estimate = model.estimate(workload)
        assert estimate.throughput == min(estimate.per_metric.values())
        assert estimate.limiting_metric in estimate.per_metric

    def test_per_metric_uses_only_that_metrics_samples(self, model):
        workload = SampleSet([sample("stalls", 50, 1.0)])
        estimate = model.estimate(workload)
        assert set(estimate.per_metric) == {"stalls"}

    def test_unknown_metric_skipped_by_default(self, model):
        workload = SampleSet(
            [sample("stalls", 50, 1.0), sample("unknown", 5, 1.0)]
        )
        estimate = model.estimate(workload)
        assert estimate.skipped_metrics == ["unknown"]

    def test_unknown_metric_strict_raises(self, model):
        workload = SampleSet([sample("unknown", 5, 1.0)])
        with pytest.raises(EstimationError):
            model.estimate(workload, strict=True)

    def test_all_unknown_raises(self, model):
        workload = SampleSet([sample("unknown", 5, 1.0)])
        with pytest.raises(EstimationError, match="none of the sample metrics"):
            model.estimate(workload)

    def test_empty_raises(self, model):
        with pytest.raises(EstimationError):
            model.estimate(SampleSet())

    def test_ranked_ascending(self, model):
        workload = SampleSet(
            [sample("stalls", 2, 0.5), sample("dsb_uops", 100, 0.5)]
        )
        ranking = model.estimate(workload).ranked()
        values = [e.estimate for e in ranking]
        assert values == sorted(values)

    def test_sample_counts_recorded(self, model):
        workload = SampleSet(
            [sample("stalls", 2, 0.5), sample("stalls", 3, 0.5)]
        )
        estimate = model.estimate(workload)
        assert estimate.sample_counts["stalls"] == 2

    def test_training_data_never_violates_bound(self, model, two_metric_sampleset):
        assert mean_absolute_bound_violation(model, two_metric_sampleset) == 0.0

    def test_bound_violation_requires_overlap(self, model):
        other = SampleSet([sample("unknown", 2, 1.0)])
        with pytest.raises(EstimationError):
            mean_absolute_bound_violation(model, other)


class TestAnalyze:
    def test_analyze_report_fields(self, model):
        workload = SampleSet(
            [sample("stalls", 4, 1.2), sample("dsb_uops", 40, 1.2)]
        )
        report = model.analyze(
            workload, workload="wl", metric_areas={"stalls": "Core"}
        )
        assert report.workload == "wl"
        assert report.measured_throughput == pytest.approx(1.2)
        assert report.estimated_throughput == min(
            e.estimate for e in report.ranking
        )
        assert report.area_of("stalls") == "Core"
        assert report.area_of("dsb_uops") == "?"


class TestSerialization:
    def test_round_trip(self, model):
        clone = SpireModel.from_dict(model.to_dict())
        assert sorted(clone.metrics) == sorted(model.metrics)
        workload = SampleSet(
            [sample("stalls", 7, 1.0), sample("dsb_uops", 7, 1.0)]
        )
        assert clone.estimate(workload).throughput == pytest.approx(
            model.estimate(workload).throughput
        )
