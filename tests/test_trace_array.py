"""Columnar trace substrate: TraceArray semantics and scalar parity.

Two layers of guarantees:

- :class:`TraceArray` is a lossless columnar mirror of ``MicroOp`` lists
  (round-trip, slicing, concatenation, validation);
- every vectorized simulation kernel — gshare ``update_batch``, cache
  ``access_batch``, ``TracePipeline.execute_array``, the columnar kernel
  builders, vectorized sampling, and the batched uarch ``simulate_run``
  — is **bit-exact** against its scalar reference, pinned on randomized
  hypothesis inputs including mispredict redirects and ROB-full stalls.
"""

import contextlib
import os
import random
from dataclasses import fields

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.trace import wavefront
from repro.trace import (
    KERNELS,
    CacheHierarchy,
    GsharePredictor,
    PipelineConfig,
    TracePipeline,
    TraceArray,
    collect_trace_samples,
    make_kernel_trace,
    make_kernel_trace_array,
)
from repro.trace.cache import LEVELS
from repro.trace.trace_array import KIND_CODES, LATENCY_BY_CODE
from repro.trace.uops import EXEC_LATENCY, KINDS, MicroOp
from repro.uarch.activity import WindowActivity
from repro.uarch.config import skylake_gold_6126
from repro.uarch.core import CoreModel
from repro.workloads import all_workloads

# ----------------------------------------------------------------------
# TraceArray semantics
# ----------------------------------------------------------------------


def _sample_ops() -> list[MicroOp]:
    return [
        MicroOp("alu", dest=1, sources=(2, 3), pc=0),
        MicroOp("load", dest=2, sources=(1,), address=4096, pc=4),
        MicroOp("store", sources=(2, 1), address=4160, pc=8),
        MicroOp("branch", sources=(2,), taken=True, pc=12),
        MicroOp("div", dest=3, sources=(1, 2), pc=16),
        MicroOp("fp", dest=4, sources=(), pc=20),  # zero sources
        MicroOp("branch", taken=False, pc=24),     # zero sources too
    ]


def test_kind_codes_intern_the_canonical_kinds_tuple():
    assert list(KIND_CODES) == list(KINDS)
    assert [KIND_CODES[name] for name in KINDS] == list(range(len(KINDS)))
    assert LATENCY_BY_CODE.tolist() == [EXEC_LATENCY[name] for name in KINDS]


def test_round_trip_is_lossless():
    ops = _sample_ops()
    array = TraceArray.from_microops(ops)
    assert len(array) == len(ops)
    assert array.to_microops() == ops
    # And the columnar equality agrees with itself after a second trip.
    assert TraceArray.from_microops(array.to_microops()) == array


def test_round_trip_on_kernel_traces():
    for kernel in ("stream", "mixed"):
        ops = make_kernel_trace(kernel, 400, 0.5, seed=9)
        assert TraceArray.from_microops(ops).to_microops() == ops


def test_packed_sources_edge_cases():
    ops = _sample_ops()
    array = TraceArray.from_microops(ops)
    # CSR layout: offsets monotone, one span per uop, empty spans allowed.
    assert array.src_offsets[0] == 0
    assert array.src_offsets[-1] == len(array.src_values)
    spans = [
        tuple(
            array.src_values[array.src_offsets[i] : array.src_offsets[i + 1]]
        )
        for i in range(len(array))
    ]
    assert spans == [op.sources for op in ops]

    empty = TraceArray.empty()
    assert len(empty) == 0 and not empty
    assert empty.to_microops() == []
    assert empty.max_register() == -1


def test_slice_rebases_packed_sources():
    array = TraceArray.from_microops(_sample_ops())
    window = array.slice(2, 5)
    assert window.src_offsets[0] == 0
    assert window.to_microops() == _sample_ops()[2:5]
    assert array.slice(0, len(array)) == array
    assert len(array.slice(3, 3)) == 0
    with pytest.raises(ConfigError):
        array.slice(3, 2)
    with pytest.raises(ConfigError):
        array.slice(0, len(array) + 1)


def test_concat_rebases_packed_sources():
    ops = _sample_ops()
    parts = [
        TraceArray.from_microops(ops[:2]),
        TraceArray.empty(),
        TraceArray.from_microops(ops[2:]),
    ]
    merged = TraceArray.concat(parts)
    assert merged == TraceArray.from_microops(ops)
    assert TraceArray.concat([]) == TraceArray.empty()


def test_max_register():
    array = TraceArray.from_microops(_sample_ops())
    assert array.max_register() == 4


def test_validation_rejects_malformed_columns():
    with pytest.raises(ConfigError):  # length mismatch
        TraceArray([0], [0, 4], [-1], [1], [False], [0, 0], [])
    with pytest.raises(ConfigError):  # bad offsets length
        TraceArray([0], [0], [-1], [1], [False], [0], [])
    with pytest.raises(ConfigError):  # kind code out of range
        TraceArray([len(KINDS)], [0], [-1], [1], [False], [0, 0], [])
    # validate(): load without address, branch writing a register,
    # negative packed source register.
    with pytest.raises(ConfigError):
        TraceArray(
            [KIND_CODES["load"]], [0], [-1], [1], [False], [0, 0], []
        ).validate()
    with pytest.raises(ConfigError):
        TraceArray(
            [KIND_CODES["branch"]], [0], [-1], [1], [True], [0, 0], []
        ).validate()
    with pytest.raises(ConfigError):
        TraceArray(
            [KIND_CODES["alu"]], [0], [-1], [1], [False], [0, 1], [-2]
        ).validate()


def test_from_microops_rejects_negative_register_ids():
    with pytest.raises(ConfigError):
        TraceArray.from_microops([MicroOp("alu", dest=-2, sources=(1,))])
    with pytest.raises(ConfigError):
        TraceArray.from_microops([MicroOp("alu", dest=1, sources=(-3,))])


# ----------------------------------------------------------------------
# Columnar kernel builders match the scalar generators exactly
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_array_builders_match_generators(kernel):
    for n, intensity, seed in ((64, 0.0, 0), (500, 0.3, 7), (1200, 1.0, 3)):
        scalar = TraceArray.from_microops(
            make_kernel_trace(kernel, n, intensity, seed=seed)
        )
        columnar = make_kernel_trace_array(kernel, n, intensity, seed=seed)
        assert columnar == scalar, (kernel, n, intensity, seed)


def test_make_kernel_trace_array_fallback_routes_scalar(monkeypatch):
    monkeypatch.setenv("SPIRE_SCALAR_FALLBACK", "1")
    via_oracle = make_kernel_trace_array("mixed", 300, 0.5, seed=2)
    monkeypatch.delenv("SPIRE_SCALAR_FALLBACK")
    assert via_oracle == make_kernel_trace_array("mixed", 300, 0.5, seed=2)


def test_execute_array_fallback_routes_through_scalar_execute(monkeypatch):
    monkeypatch.setenv("SPIRE_SCALAR_FALLBACK", "1")
    pipeline = TracePipeline()
    calls = []
    original = TracePipeline.execute

    def spy(self, trace):
        calls.append(len(trace))
        return original(self, trace)

    monkeypatch.setattr(TracePipeline, "execute", spy)
    trace = make_kernel_trace_array("stream", 200, 0.4, seed=1)
    pipeline.execute_array(trace)
    assert calls == [200]


# ----------------------------------------------------------------------
# Hypothesis parity: vectorized kernels vs scalar references
# ----------------------------------------------------------------------


@st.composite
def branch_streams(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=1, max_value=600))
    table_bits = draw(st.sampled_from((4, 8, 12)))
    history_bits = draw(st.integers(min_value=0, max_value=table_bits))
    rng = random.Random(seed)
    pcs = [rng.randrange(1 << 16) * 4 for _ in range(n)]
    taken = [rng.random() < 0.5 for _ in range(n)]
    return table_bits, history_bits, pcs, taken


@settings(max_examples=40, deadline=None)
@given(branch_streams())
def test_gshare_update_batch_matches_scalar(stream):
    table_bits, history_bits, pcs, taken = stream
    scalar = GsharePredictor(table_bits, history_bits)
    batch = GsharePredictor(table_bits, history_bits)
    expected = [scalar.update(pc, t) for pc, t in zip(pcs, taken)]
    got = batch.update_batch(pcs, taken)
    assert got.tolist() == expected
    assert batch._table == scalar._table
    assert batch._history == scalar._history
    assert batch.predictions == scalar.predictions
    assert batch.mispredictions == scalar.mispredictions


@st.composite
def address_streams(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=1, max_value=800))
    # Footprints straddling every hierarchy level, with enough reuse to
    # exercise LRU hits, evictions, and same-line runs.
    footprint = draw(st.sampled_from((1 << 12, 1 << 16, 1 << 21, 1 << 24)))
    rng = random.Random(seed)
    return [rng.randrange(footprint) for _ in range(n)]


@settings(max_examples=40, deadline=None)
@given(address_streams())
def test_cache_hierarchy_access_batch_matches_scalar(addresses):
    scalar = CacheHierarchy(l1_size=4096, l2_size=32 * 1024, l3_size=256 * 1024)
    batch = CacheHierarchy(l1_size=4096, l2_size=32 * 1024, l3_size=256 * 1024)
    expected = [scalar.access(address) for address in addresses]
    levels, latencies = batch.access_batch(addresses)
    assert [LEVELS[code] for code in levels.tolist()] == [
        r.level for r in expected
    ]
    assert latencies.tolist() == [r.latency for r in expected]
    for level_name in ("l1", "l2", "l3"):
        scalar_level = getattr(scalar, level_name)
        batch_level = getattr(batch, level_name)
        assert (batch_level.hits, batch_level.misses) == (
            scalar_level.hits,
            scalar_level.misses,
        ), level_name
        # Replacement state agrees too: mixing scalar accesses after a
        # batch must behave identically.
        assert all(
            batch_level.contains(a) == scalar_level.contains(a)
            for a in addresses[:32]
        )
    assert batch.dram_accesses == scalar.dram_accesses


@st.composite
def random_trace_arrays(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=1, max_value=1_500))
    rng = random.Random(seed)
    ops = []
    for i in range(n):
        kind = rng.choice(KINDS)
        sources = tuple(
            rng.randint(0, 16) for _ in range(rng.randint(0, 2))
        )
        if kind in ("load", "store"):
            ops.append(
                MicroOp(
                    kind,
                    dest=rng.randint(1, 16) if kind == "load" else None,
                    sources=sources,
                    address=rng.randrange(1 << 22),
                    pc=(i % 512) * 4,
                )
            )
        elif kind == "branch":
            # Random outcomes guarantee mispredict redirects.
            ops.append(
                MicroOp(
                    "branch",
                    sources=sources,
                    taken=rng.random() < 0.5,
                    pc=(i % 512) * 4,
                )
            )
        else:
            ops.append(
                MicroOp(kind, dest=rng.randint(1, 16), sources=sources,
                        pc=(i % 512) * 4)
            )
    return ops


def _assert_pipelines_equal(scalar: TracePipeline, batch: TracePipeline):
    assert batch.counters.as_dict() == scalar.counters.as_dict()
    assert batch._fetch_ready == scalar._fetch_ready
    assert batch._rob == scalar._rob
    assert batch._retire_times == scalar._retire_times
    assert batch._register_ready == scalar._register_ready


@settings(max_examples=25, deadline=None)
@given(random_trace_arrays())
def test_execute_array_matches_execute_on_random_traces(ops):
    # A tiny ROB and retire width force rob-full and retire-limit stalls
    # alongside the mispredict redirects the random outcomes produce.
    config = PipelineConfig(width=2, rob_size=8)
    scalar = TracePipeline(config=config)
    batch = TracePipeline(config=config)
    scalar.execute(ops)
    batch.execute_array(TraceArray.from_microops(ops), block_size=256)
    assert scalar.counters.rob_stall_cycles >= 0
    _assert_pipelines_equal(scalar, batch)


@settings(max_examples=10, deadline=None)
@given(random_trace_arrays())
def test_execute_array_matches_execute_default_config(ops):
    scalar = TracePipeline()
    batch = TracePipeline()
    scalar.execute(ops)
    batch.execute_array(TraceArray.from_microops(ops))
    _assert_pipelines_equal(scalar, batch)


def test_execute_array_forces_rob_full_stalls():
    # Long-latency divides back up a tiny ROB: both paths must agree on
    # the resulting rob_stall_cycles, and they must actually occur.
    ops = [
        MicroOp("div", dest=(i % 8) + 1, sources=((i % 8) + 1,), pc=i * 4)
        for i in range(64)
    ]
    config = PipelineConfig(width=2, rob_size=4)
    scalar = TracePipeline(config=config)
    batch = TracePipeline(config=config)
    scalar.execute(ops)
    batch.execute_array(TraceArray.from_microops(ops))
    assert scalar.counters.rob_stall_cycles > 0
    _assert_pipelines_equal(scalar, batch)


# ----------------------------------------------------------------------
# End-to-end parity: sampling and the batched uarch model
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kernel", ("stream", "branchy", "mixed"))
def test_sampling_parity_scalar_vs_vectorized(monkeypatch, kernel):
    monkeypatch.setenv("SPIRE_SCALAR_FALLBACK", "1")
    scalar = collect_trace_samples(
        kernel, n_uops=3_000, window_uops=500, intensities=(0.2, 0.8), seed=5
    )
    monkeypatch.delenv("SPIRE_SCALAR_FALLBACK")
    vectorized = collect_trace_samples(
        kernel, n_uops=3_000, window_uops=500, intensities=(0.2, 0.8), seed=5
    )
    assert vectorized.final_counters == scalar.final_counters
    assert vectorized.instructions == scalar.instructions
    assert vectorized.cycles == scalar.cycles
    assert vectorized.samples.to_records() == scalar.samples.to_records()


def _suite_specs():
    return [
        phase.spec if hasattr(phase, "spec") else phase
        for workload in all_workloads()
        for phase in workload.phases
    ]


@pytest.mark.parametrize("seed", (None, 7))
def test_simulate_run_batch_matches_simulate_window(seed):
    core = CoreModel(skylake_gold_6126())
    specs = _suite_specs()
    rng_a = random.Random(seed) if seed is not None else None
    rng_b = random.Random(seed) if seed is not None else None
    scalar = [core.simulate_window(spec, rng_a) for spec in specs]
    batch = core.simulate_run(specs, rng_b)
    names = [spec.name for spec in fields(WindowActivity)]
    for scalar_act, batch_act in zip(scalar, batch, strict=True):
        for name in names:
            assert getattr(batch_act, name) == getattr(scalar_act, name), name
    if seed is not None:  # the rng streams stayed in lockstep
        assert rng_a.random() == rng_b.random()


def test_simulate_run_fallback_routes_per_window(monkeypatch):
    monkeypatch.setenv("SPIRE_SCALAR_FALLBACK", "1")
    core = CoreModel(skylake_gold_6126())
    calls = []
    original = CoreModel.simulate_window

    def spy(self, spec, rng=None):
        calls.append(spec)
        return original(self, spec, rng)

    monkeypatch.setattr(CoreModel, "simulate_window", spy)
    specs = _suite_specs()[:5]
    core.simulate_run(specs, random.Random(1))
    assert len(calls) == 5


# ----------------------------------------------------------------------
# Wavefront-compressed recurrence parity
# ----------------------------------------------------------------------


@contextlib.contextmanager
def _env(**overrides):
    """Set/unset env vars for one example (hypothesis-safe, unlike the
    function-scoped monkeypatch fixture)."""
    saved = {key: os.environ.get(key) for key in overrides}
    for key, value in overrides.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@st.composite
def clustered_trace_ops(draw):
    """Adversarial wavefront inputs.

    Same-kind clusters contend for one functional-unit ring; cache-
    missing loads inject latency spikes into otherwise-uniform spans;
    dependency chains couple rows across chunk cuts; divs, multi-source
    rows, and mispredicting branches land span breakers at random
    offsets so regions straddle every boundary the planner can emit.
    """
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=64, max_value=900))
    spiky = draw(st.booleans())
    rng = random.Random(seed)
    ops = []
    last_dest = None
    while len(ops) < n:
        kind = rng.choice(KINDS)
        for _ in range(rng.randint(1, 48)):  # FU-kind clustering
            if len(ops) >= n:
                break
            i = len(ops)
            pc = (i % 256) * 4
            sources = ()
            if last_dest is not None and rng.random() < 0.5:
                sources = (last_dest,)
                if rng.random() < 0.1:  # multi-source rows break spans
                    sources = (last_dest, rng.randint(1, 16))
            if kind in ("load", "store"):
                address = (
                    rng.randrange(1 << 22)
                    if spiky and rng.random() < 0.4
                    else (i % 64) * 64
                )
                dest = rng.randint(1, 16) if kind == "load" else None
                ops.append(
                    MicroOp(
                        kind, dest=dest, sources=sources,
                        address=address, pc=pc,
                    )
                )
                last_dest = dest if dest is not None else last_dest
            elif kind == "branch":
                ops.append(
                    MicroOp(
                        "branch", sources=sources,
                        taken=rng.random() < 0.85, pc=pc,
                    )
                )
            else:
                dest = rng.randint(1, 16)
                ops.append(MicroOp(kind, dest=dest, sources=sources, pc=pc))
                last_dest = dest
    return ops


@settings(max_examples=25, deadline=None)
@given(clustered_trace_ops())
def test_wavefront_parity_on_clustered_traces(ops):
    # MIN_SPAN=8 forces span planning far below the production
    # threshold so tiny hypothesis traces reach the wavefront path;
    # the scalar MicroOp loop is the ground truth.
    scalar = TracePipeline()
    wave = TracePipeline()
    scalar.execute(ops)
    with _env(SPIRE_WAVEFRONT_MIN_SPAN="8", SPIRE_WAVEFRONT=None):
        wave.execute_array(TraceArray.from_microops(ops), block_size=256)
    _assert_pipelines_equal(scalar, wave)


@settings(max_examples=15, deadline=None)
@given(clustered_trace_ops())
def test_wavefront_parity_rob_boundary_straddles(ops):
    # A tiny ROB makes chunk pop times depend on in-chunk retires, so
    # every oversized solver chunk straddles the ROB boundary; a small
    # block size cuts spans at block boundaries on top of that.
    config = PipelineConfig(width=2, rob_size=8)
    scalar = TracePipeline(config=config)
    wave = TracePipeline(config=config)
    scalar.execute(ops)
    with _env(SPIRE_WAVEFRONT_MIN_SPAN="8", SPIRE_WAVEFRONT=None):
        wave.execute_array(TraceArray.from_microops(ops), block_size=96)
    _assert_pipelines_equal(scalar, wave)


@pytest.mark.parametrize("kernel", ("codebloat", "pointer_chase", "stream"))
def test_wavefront_windowed_snapshots_unchanged(kernel):
    # Window boundaries settle counters mid-span; the sampled records
    # must not move when the wavefront path is enabled across them.
    kwargs = dict(
        n_uops=4_000, window_uops=700, intensities=(0.3, 0.9), seed=11
    )
    with _env(SPIRE_WAVEFRONT="0", SPIRE_WAVEFRONT_MIN_SPAN="8"):
        off = collect_trace_samples(kernel, **kwargs)
    with _env(SPIRE_WAVEFRONT=None, SPIRE_WAVEFRONT_MIN_SPAN="8"):
        on = collect_trace_samples(kernel, **kwargs)
    assert on.final_counters == off.final_counters
    assert on.instructions == off.instructions
    assert on.cycles == off.cycles
    assert on.samples.to_records() == off.samples.to_records()


def test_scalar_fallback_routes_around_wavefront(monkeypatch):
    # SPIRE_SCALAR_FALLBACK=1 must bypass the wavefront machinery
    # entirely (zero blocks recorded), not merely match its output.
    monkeypatch.setenv("SPIRE_SCALAR_FALLBACK", "1")
    monkeypatch.setenv("SPIRE_WAVEFRONT_MIN_SPAN", "1")
    wavefront.reset_stats()
    fallback = collect_trace_samples(
        "stream", n_uops=2_000, window_uops=500, seed=3
    )
    stats = wavefront.stats()
    assert stats["blocks"] == 0
    assert stats["uops"] == 0
    monkeypatch.delenv("SPIRE_SCALAR_FALLBACK")
    monkeypatch.delenv("SPIRE_WAVEFRONT_MIN_SPAN")
    vectorized = collect_trace_samples(
        "stream", n_uops=2_000, window_uops=500, seed=3
    )
    assert fallback.final_counters == vectorized.final_counters
    assert fallback.samples.to_records() == vectorized.samples.to_records()
