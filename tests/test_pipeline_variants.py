"""Pipeline variants: trend fitting, little machine, unmultiplexed mode.

The default experiment uses the paper's exact configuration; these tests
exercise the pipeline's orthogonal switches end to end and check each one
changes (only) what it should.
"""

import pytest

from repro.core import (
    NEGATIVE_METRIC,
    RooflineFitOptions,
    SpireModel,
    TrainOptions,
)
from repro.pipeline import ExperimentConfig, run_experiment, run_workload
from repro.uarch import skylake_gold_6126
from repro.uarch.config import little_inorder_core
from repro.workloads import workload_by_name

SMALL = ExperimentConfig(train_windows=120, test_windows=60)


class TestTrendModeExperiment:
    def test_trend_training_on_pipeline_data(self, small_experiment):
        options = TrainOptions(
            roofline=RooflineFitOptions(direction_mode="trend")
        )
        model = SpireModel.train(small_experiment.training_samples, options)
        assert set(model.metrics) == set(small_experiment.model.metrics)
        bp1 = model.roofline("br_misp_retired.all_branches")
        assert bp1.direction == NEGATIVE_METRIC
        # Trend mode never drops the bound past the apex for BP.1.
        assert bp1.estimate(1e9) == pytest.approx(bp1.apex.y)

    def test_trend_model_still_agrees_with_tma(self, small_experiment):
        from repro.counters.events import default_catalog

        options = TrainOptions(
            roofline=RooflineFitOptions(direction_mode="trend")
        )
        model = SpireModel.train(small_experiment.training_samples, options)
        run = small_experiment.testing_runs["tnn"]
        report = model.analyze(
            run.collection.samples,
            workload="tnn",
            top_k=10,
            metric_areas=default_catalog().areas(),
        )
        areas = [report.area_of(e.metric) for e in report.top(10)]
        assert "Front-End" in areas


class TestLittleMachineExperiment:
    def test_full_experiment_on_little_core(self):
        result = run_experiment(SMALL, machine=little_inorder_core())
        assert result.machine.name == "little-inorder"
        assert len(result.model) > 40
        # IPCs respect the 2-wide pipeline.
        for run in result.testing_runs.values():
            assert 0 < run.measured_ipc <= 2.0

    def test_little_core_still_classifies_tnn_frontend(self):
        machine = little_inorder_core()
        run = run_workload(workload_by_name("tnn"), machine, 120, SMALL)
        assert run.tma.fraction("front_end_bound") > 0.1


class TestUnmultiplexedExperiment:
    def test_unmultiplexed_has_no_overhead_and_more_samples(self):
        multiplexed = run_workload(
            workload_by_name("fftw"), skylake_gold_6126(), 96, SMALL
        )
        unmultiplexed = run_workload(
            workload_by_name("fftw"),
            skylake_gold_6126(),
            96,
            ExperimentConfig(
                train_windows=120, test_windows=60, multiplex=False
            ),
        )
        assert unmultiplexed.collection.overhead_cycles == 0.0
        assert multiplexed.collection.overhead_cycles > 0.0
        # The idealized PMU observes at least as much as the multiplexed
        # one (equal when every group gets a slice in every period).
        assert len(unmultiplexed.collection.samples) >= len(
            multiplexed.collection.samples
        )
        # ... but each unmultiplexed sample saw the whole period, while a
        # multiplexed sample saw only its group's slices.
        unmux_time = unmultiplexed.collection.samples.total_time("idq.dsb_uops")
        mux_time = multiplexed.collection.samples.total_time("idq.dsb_uops")
        assert unmux_time > mux_time

    def test_both_modes_measure_the_same_ipc(self):
        # Identical seeds and specs: the PMU mode must not change execution.
        a = run_workload(
            workload_by_name("fftw"), skylake_gold_6126(), 96, SMALL
        )
        b = run_workload(
            workload_by_name("fftw"),
            skylake_gold_6126(),
            96,
            ExperimentConfig(
                train_windows=SMALL.train_windows,
                test_windows=SMALL.test_windows,
                multiplex=False,
            ),
        )
        assert a.measured_ipc == pytest.approx(b.measured_ipc)
