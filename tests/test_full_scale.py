"""The paper's evaluation at full default scale, as one integration test.

This is the same configuration the benchmarks use
(``ExperimentConfig()``); running it inside the test suite guarantees
``pytest tests/`` alone certifies the headline reproduction — Table I
categories, Table II shape, and the §V agreement claim — without needing
the benchmark harness.
"""

import pytest

from repro.counters.events import default_catalog
from repro.pipeline import ExperimentConfig, cached_experiment


@pytest.fixture(scope="module")
def full_experiment():
    return cached_experiment(ExperimentConfig())


class TestHeadlineReproduction:
    def test_table1_categories(self, full_experiment):
        runs = {**full_experiment.training_runs, **full_experiment.testing_runs}
        assert len(runs) == 27
        for name, run in runs.items():
            assert run.table1_category == run.workload.expected_bottleneck, name

    def test_table2_shape(self, full_experiment):
        expectations = {
            "tnn": ("Front-End", ("dsb", "idq")),
            "scikit-learn-sparsify": ("Bad Speculation", ("br_misp", "recovery")),
            "onnx": ("Memory", ("cycle_activity", "l1d")),
            "parboil-cutcp": ("Core", ("lock_loads", "stall")),
        }
        for name, (category, families) in expectations.items():
            report = full_experiment.analyze(name, top_k=10)
            areas = [report.area_of(e.metric) for e in report.top(10)]
            assert category in areas, (name, areas)
            metrics = [e.metric for e in report.top(10)]
            assert any(
                any(family in metric for family in families)
                for metric in metrics
            ), (name, metrics)

    def test_agreement_at_least_three_of_four(self, full_experiment):
        matches = 0
        for name, run in full_experiment.testing_runs.items():
            report = full_experiment.analyze(name, top_k=10)
            top_area = report.area_of(report.top(1)[0].metric)
            if run.table1_category in (top_area, report.dominant_area(10)):
                matches += 1
        assert matches >= 3

    def test_every_roofline_is_an_upper_bound(self, full_experiment):
        model = full_experiment.model
        for metric in model.metrics:
            assert model.roofline(metric).is_upper_bound_of_training_data(), metric

    def test_estimates_track_measured_ipc(self, full_experiment):
        # Bounds land in the right order and the right neighbourhood: the
        # four test workloads' estimated bounds rank like their IPCs.
        measured = {}
        estimated = {}
        for name, run in full_experiment.testing_runs.items():
            report = full_experiment.analyze(name)
            measured[name] = report.measured_throughput
            estimated[name] = report.estimated_throughput
        measured_order = sorted(measured, key=measured.get)
        estimated_order = sorted(estimated, key=estimated.get)
        assert measured_order == estimated_order

    def test_metric_catalog_fully_trained(self, full_experiment):
        assert set(full_experiment.model.metrics) == set(
            default_catalog().programmable_names
        )
