"""Unit tests for Sample / SampleSet / time-weighted averaging."""

import math

import pytest

from repro.core.sample import Sample, SampleSet, time_weighted_average
from repro.errors import DataError


class TestSample:
    def test_throughput_and_intensity(self):
        s = Sample("stalls", time=100.0, work=250.0, metric_count=50.0)
        assert s.throughput == pytest.approx(2.5)
        assert s.intensity == pytest.approx(5.0)

    def test_zero_metric_count_gives_infinite_intensity(self):
        s = Sample("stalls", time=10.0, work=5.0, metric_count=0.0)
        assert math.isinf(s.intensity)
        assert not s.has_finite_intensity

    def test_as_point(self):
        s = Sample("m", time=10.0, work=20.0, metric_count=4.0)
        assert s.as_point() == (5.0, 2.0)

    def test_zero_work_allowed(self):
        s = Sample("m", time=10.0, work=0.0, metric_count=4.0)
        assert s.throughput == 0.0
        assert s.intensity == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(time=0.0, work=1.0, metric_count=1.0),
            dict(time=-1.0, work=1.0, metric_count=1.0),
            dict(time=1.0, work=-1.0, metric_count=1.0),
            dict(time=1.0, work=1.0, metric_count=-1.0),
            dict(time=math.nan, work=1.0, metric_count=1.0),
            dict(time=1.0, work=math.inf, metric_count=1.0),
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(DataError):
            Sample("m", **kwargs)

    def test_empty_metric_rejected(self):
        with pytest.raises(DataError):
            Sample("", time=1.0, work=1.0, metric_count=1.0)

    def test_dict_round_trip(self):
        s = Sample("m", time=1.5, work=2.5, metric_count=3.5)
        assert Sample.from_dict(s.to_dict()) == s

    def test_from_dict_missing_field(self):
        with pytest.raises(DataError, match="missing"):
            Sample.from_dict({"metric": "m", "time": 1.0})


class TestSampleSet:
    def test_grouping(self):
        ss = SampleSet(
            [
                Sample("a", 1.0, 1.0, 1.0),
                Sample("b", 1.0, 1.0, 1.0),
                Sample("a", 2.0, 2.0, 2.0),
            ]
        )
        assert ss.metrics() == ["a", "b"]
        assert len(ss.for_metric("a")) == 2
        assert len(ss.for_metric("missing")) == 0

    def test_len_bool_iter(self):
        ss = SampleSet()
        assert not ss
        ss.add(Sample("a", 1.0, 1.0, 1.0))
        assert ss and len(ss) == 1
        assert [s.metric for s in ss] == ["a"]

    def test_add_rejects_non_samples(self):
        ss = SampleSet()
        with pytest.raises(DataError):
            ss.add("not a sample")

    def test_filtered(self):
        ss = SampleSet([Sample("a", 1.0, 1.0, 1.0), Sample("a", 1.0, 9.0, 1.0)])
        high = ss.filtered(lambda s: s.work > 5)
        assert len(high) == 1

    def test_restricted_to(self):
        ss = SampleSet([Sample("a", 1.0, 1.0, 1.0), Sample("b", 1.0, 1.0, 1.0)])
        assert ss.restricted_to(["b"]).metrics() == ["b"]

    def test_merged_with(self):
        a = SampleSet([Sample("a", 1.0, 1.0, 1.0)])
        b = SampleSet([Sample("b", 1.0, 1.0, 1.0)])
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert len(a) == 1  # original untouched

    def test_total_time(self):
        ss = SampleSet([Sample("a", 2.0, 1.0, 1.0), Sample("b", 3.0, 1.0, 1.0)])
        assert ss.total_time() == 5.0
        assert ss.total_time("a") == 2.0

    def test_measured_throughput(self):
        ss = SampleSet([Sample("a", 2.0, 4.0, 1.0), Sample("a", 2.0, 2.0, 1.0)])
        assert ss.measured_throughput() == pytest.approx(1.5)

    def test_measured_throughput_empty_raises(self):
        with pytest.raises(DataError):
            SampleSet().measured_throughput()

    def test_records_round_trip(self):
        ss = SampleSet([Sample("a", 1.0, 2.0, 3.0)])
        again = SampleSet.from_records(ss.to_records())
        assert list(again)[0] == list(ss)[0]

    def test_repr(self):
        ss = SampleSet([Sample("a", 1.0, 1.0, 1.0)])
        assert "1 samples" in repr(ss)


class TestTimeWeightedAverage:
    def test_eq1(self):
        # P̄ = Σ T P / Σ T with explicit numbers.
        assert time_weighted_average([2.0, 4.0], [1.0, 3.0]) == pytest.approx(3.5)

    def test_equal_weights_is_mean(self):
        assert time_weighted_average([1.0, 2.0, 3.0], [5.0, 5.0, 5.0]) == 2.0

    def test_single_value(self):
        assert time_weighted_average([7.0], [2.0]) == 7.0

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            time_weighted_average([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(DataError):
            time_weighted_average([], [])

    def test_zero_total_time(self):
        with pytest.raises(DataError):
            time_weighted_average([1.0], [0.0])
