"""Unit tests for MetricRoofline fitting and estimation."""

import math

import pytest

from repro.core.roofline import (
    MetricRoofline,
    RooflineFitOptions,
    fit_metric_roofline,
)
from repro.core.sample import Sample
from repro.errors import FitError


def sample(metric, intensity, throughput, work=1000.0, time_scale=1.0):
    if math.isinf(intensity):
        count = 0.0
    else:
        count = work / intensity
    return Sample(
        metric,
        time=time_scale * work / throughput,
        work=work,
        metric_count=count,
    )


class TestFitting:
    def test_empty_rejected(self):
        with pytest.raises(FitError):
            fit_metric_roofline([])

    def test_mixed_metrics_rejected(self):
        with pytest.raises(FitError, match="mixed metrics"):
            fit_metric_roofline([sample("a", 1, 1), sample("b", 1, 1)])

    def test_apex_is_highest_throughput_sample(self):
        r = fit_metric_roofline(
            [sample("m", 2, 1.0), sample("m", 5, 3.0), sample("m", 9, 2.0)]
        )
        assert (r.apex.x, r.apex.y) == (5.0, 3.0)

    def test_apex_tie_breaks_left(self):
        r = fit_metric_roofline([sample("m", 2, 3.0), sample("m", 6, 3.0)])
        assert r.apex.x == pytest.approx(2.0)

    def test_upper_bound_invariant(self):
        samples = [
            sample("m", i, t)
            for i, t in [(1, 0.5), (2, 1.4), (4, 2.0), (8, 1.5), (16, 1.0), (3, 0.2)]
        ]
        r = fit_metric_roofline(samples)
        assert r.is_upper_bound_of_training_data()

    def test_function_starts_at_origin(self):
        r = fit_metric_roofline([sample("m", 4, 2.0)])
        assert r.function(0.0) == 0.0

    def test_only_infinite_samples_constant_fit(self):
        r = fit_metric_roofline(
            [sample("m", math.inf, 1.5), sample("m", math.inf, 2.5)]
        )
        assert r.estimate(0.0) == 2.5
        assert r.estimate(math.inf) == 2.5
        assert r.infinite_sample_count == 2

    def test_infinite_samples_above_apex_raise_tail(self):
        r = fit_metric_roofline(
            [sample("m", 4, 2.0), sample("m", math.inf, 3.0)]
        )
        assert r.estimate(math.inf) == pytest.approx(3.0)
        assert r.is_upper_bound_of_training_data()

    def test_keep_samples_off(self):
        opts = RooflineFitOptions(keep_samples=False)
        r = fit_metric_roofline([sample("m", 4, 2.0)], options=opts)
        assert r.training_points == []

    def test_right_fit_diagnostics_attached(self):
        r = fit_metric_roofline([sample("m", 4, 2.0), sample("m", 9, 1.0)])
        assert r.right_fit is not None
        assert r.right_fit.front


class TestEstimation:
    @pytest.fixture
    def roofline(self):
        return fit_metric_roofline(
            [
                sample("m", 1, 0.8),
                sample("m", 4, 2.0),
                sample("m", 10, 1.5),
                sample("m", 30, 1.0),
            ]
        )

    def test_estimate_at_apex(self, roofline):
        assert roofline.estimate(4.0) == pytest.approx(2.0)

    def test_estimate_interpolates_left(self, roofline):
        assert 0.8 <= roofline.estimate(2.0) <= 2.0

    def test_estimate_beyond_data_is_flat(self, roofline):
        assert roofline.estimate(1000.0) == roofline.estimate(30.0)

    def test_estimate_at_infinity(self, roofline):
        assert roofline.estimate(math.inf) == roofline.estimate(1e12)

    def test_negative_intensity_rejected(self, roofline):
        with pytest.raises(FitError):
            roofline.estimate(-1.0)

    def test_nan_rejected(self, roofline):
        with pytest.raises(FitError):
            roofline.estimate(math.nan)

    def test_estimate_sample_checks_metric(self, roofline):
        with pytest.raises(FitError, match="does not match"):
            roofline.estimate_sample(sample("other", 4, 1.0))

    def test_estimate_samples_is_time_weighted(self, roofline):
        # Two samples at different intensities with very different period
        # lengths: the long one dominates.
        short = sample("m", 4, 2.0)                     # est ~2.0, T=500
        long = sample("m", 30, 1.0, time_scale=100.0)   # est ~1.0, T=100000
        merged = roofline.estimate_samples([short, long])
        assert merged == pytest.approx(
            (short.time * roofline.estimate_sample(short)
             + long.time * roofline.estimate_sample(long))
            / (short.time + long.time)
        )
        assert merged < 1.1  # pulled toward the long sample

    def test_estimate_samples_empty_rejected(self, roofline):
        with pytest.raises(FitError):
            roofline.estimate_samples([])


class TestSerialization:
    def test_round_trip_estimates_match(self):
        r = fit_metric_roofline(
            [sample("m", 1, 0.8), sample("m", 4, 2.0), sample("m", 30, 1.0)]
        )
        again = MetricRoofline.from_dict(r.to_dict())
        for intensity in (0.5, 2.0, 4.0, 10.0, 100.0, math.inf):
            assert again.estimate(intensity) == pytest.approx(r.estimate(intensity))
        assert again.sample_count == r.sample_count
