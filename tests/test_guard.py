"""Tests for the guarded-dispatch layer (repro.guard).

Covers the sampled oracle checks and per-kernel circuit breakers
(:mod:`repro.guard.dispatch`), the stage-boundary numeric guardrails
(:mod:`repro.guard.guardrails`), artifact integrity headers, atomic
writes and quarantine (:mod:`repro.guard.artifact`), the ``spire
doctor`` scanner (:mod:`repro.guard.doctor`), and the end-to-end
``diverge-kernel`` / ``corrupt-cache-entry`` faults through
``run_experiment_with_report``.
"""

from __future__ import annotations

import json
import math
import os
import warnings

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import __version__
from repro.errors import (
    ConfigError,
    DataError,
    DegradedDataWarning,
    GuardDivergenceError,
    GuardrailViolation,
)
from repro.guard.artifact import (
    attach_header,
    atomic_write_text,
    content_checksum,
    quarantine_dir,
    quarantine_file,
    verify_payload,
)
from repro.guard.dispatch import (
    GUARDED_KERNELS,
    GuardConfig,
    guarded_call,
    health_report,
    inject_divergence,
    kernel_guard,
    registry,
    reset_guards,
)
from repro.guard.doctor import doctor_cache_dir
from repro.guard.guardrails import (
    check_bound_violation,
    check_estimates,
    check_pareto_front,
    guardrail_hit,
)

GUARD_ENV_PREFIXES = ("SPIRE_GUARD", "SPIRE_GUARDRAIL", "SPIRE_SCALAR_FALLBACK")


@pytest.fixture(autouse=True)
def fresh_guards(monkeypatch):
    """Isolate every test: clean guard env and a fresh registry."""
    for name in list(os.environ):
        if name.startswith(GUARD_ENV_PREFIXES):
            monkeypatch.delenv(name, raising=False)
    reset_guards()
    yield
    reset_guards()


def checked_config(**kwargs) -> GuardConfig:
    kwargs.setdefault("check_rate", 1)
    return GuardConfig(**kwargs)


# ---------------------------------------------------------------------------
# dispatch: schedule, parity, breakers
# ---------------------------------------------------------------------------


class TestDispatch:
    def test_rate_one_checks_every_call(self):
        reset_guards(checked_config())
        calls = {"fast": 0, "oracle": 0}

        def fast():
            calls["fast"] += 1
            return 2.0

        def oracle():
            calls["oracle"] += 1
            return 2.0

        for _ in range(5):
            assert guarded_call("pareto", fast, oracle) == 2.0
        assert calls == {"fast": 5, "oracle": 5}
        health = health_report()
        assert health.kernels["pareto"].checks == 5
        assert health.ok

    def test_rate_zero_never_checks(self):
        reset_guards(GuardConfig(check_rate=0))
        result = guarded_call(
            "pareto", fast=lambda: 1.0, oracle=lambda: pytest.fail("oracle ran")
        )
        assert result == 1.0
        assert health_report().checks_run == 0

    def test_schedule_is_deterministic(self):
        def schedule(runs: int = 64) -> list[int]:
            reset_guards(GuardConfig(check_rate=8, seed=7))
            guard = kernel_guard("train")
            return [i for i in range(runs) if guard.should_check()]

        first, second = schedule(), schedule()
        assert first == second
        assert len(first) == 8  # every 8th call out of 64
        # A different seed shifts the phase for at least one kernel.
        reset_guards(GuardConfig(check_rate=8, seed=8))
        shifted = [i for i in range(64) if kernel_guard("train").should_check()]
        assert len(shifted) == 8

    def test_real_divergence_serves_oracle_and_trips(self):
        reset_guards(checked_config())
        with pytest.warns(DegradedDataWarning, match="diverged"):
            result = guarded_call("pareto", fast=lambda: 1.0, oracle=lambda: 2.0)
        assert result == 2.0  # the oracle's answer is the trusted one
        health = health_report()
        assert health.tripped_kernels == ["pareto"]
        assert not health.divergences[0].injected
        # The breaker is tripped: only the oracle runs from now on.
        result = guarded_call(
            "pareto", fast=lambda: pytest.fail("fast ran"), oracle=lambda: 3.0
        )
        assert result == 3.0

    def test_trip_is_per_kernel(self):
        reset_guards(checked_config())
        with pytest.warns(DegradedDataWarning):
            guarded_call("pareto", fast=lambda: 1.0, oracle=lambda: 2.0)
        # Other kernels keep their fast path.
        assert guarded_call("train", fast=lambda: 10.0, oracle=lambda: 10.0) == 10.0
        health = health_report()
        assert health.tripped_kernels == ["pareto"]
        assert not health.kernels["train"].tripped

    def test_injected_divergence_serves_fast_result(self):
        reset_guards(checked_config())
        inject_divergence("train")
        with pytest.warns(DegradedDataWarning, match="injected"):
            result = guarded_call("train", fast=lambda: 1.0, oracle=lambda: 1.0)
        assert result == 1.0  # fast result survives: bit-identical output
        health = health_report()
        assert health.tripped_kernels == ["train"]
        assert health.divergences[0].injected

    def test_raise_policy(self):
        reset_guards(checked_config(policy="raise"))
        with pytest.raises(GuardDivergenceError, match="pareto"):
            guarded_call("pareto", fast=lambda: 1.0, oracle=lambda: 2.0)

    def test_comparison_crash_counts_as_divergence(self):
        reset_guards(checked_config())

        def bad_compare(a, b):
            raise RuntimeError("boom")

        with pytest.warns(DegradedDataWarning):
            result = guarded_call(
                "pareto", fast=lambda: 1.0, oracle=lambda: 1.0, compare=bad_compare
            )
        assert result == 1.0
        assert health_report().tripped_kernels == ["pareto"]

    def test_trip_determinism(self):
        """Same config and call sequence -> divergence at the same index."""

        def run() -> int:
            reset_guards(GuardConfig(check_rate=4, seed=3))
            for i in range(32):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DegradedDataWarning)
                    guarded_call(
                        "estimate", fast=lambda i=i: i, oracle=lambda i=i: -i
                    )
            events = health_report().divergences
            assert events
            return events[0].call_index

        assert run() == run()

    def test_env_config(self, monkeypatch):
        monkeypatch.setenv("SPIRE_GUARD_RATE", "16")
        monkeypatch.setenv("SPIRE_GUARD_RATE_CACHE_ACCESS_BATCH", "2")
        monkeypatch.setenv("SPIRE_GUARD_POLICY", "raise")
        config = GuardConfig.from_env()
        assert config.check_rate == 16
        assert config.rate_for("cache.access_batch") == 2
        assert config.rate_for("train") == 16
        assert config.policy == "raise"

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            GuardConfig(check_rate=-1)
        with pytest.raises(ConfigError):
            GuardConfig(policy="explode")

    def test_all_guarded_kernels_named(self):
        assert len(GUARDED_KERNELS) == 15
        assert len(set(GUARDED_KERNELS)) == 15
        for kernel in (
            "fused_experiment",
            "trace.fused_run",
            "trace.block_recurrence",
            "shm.transport",
            "stream.update",
            "serve.batch_estimate",
        ):
            assert kernel in GUARDED_KERNELS


# ---------------------------------------------------------------------------
# dispatch: always-checked parity on real kernels (hypothesis)
# ---------------------------------------------------------------------------


points = st.lists(
    st.tuples(
        st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
        st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


class TestAlwaysCheckedParity:
    @settings(max_examples=40, deadline=None)
    @given(points)
    def test_pareto_checked_equals_scalar(self, pts):
        from repro.geometry.pareto import pareto_front

        reset_guards(GuardConfig(check_rate=0))
        unchecked = pareto_front(pts)
        reset_guards(checked_config())
        checked = pareto_front(pts)
        assert checked == unchecked
        health = health_report()
        assert health.kernels["pareto"].checks >= 1
        assert health.ok, "fast and scalar pareto must agree on every cloud"

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**14), min_size=1,
                    max_size=64),
           st.lists(st.booleans(), min_size=64, max_size=64))
    def test_predictor_checked_equals_scalar(self, pcs, taken):
        import numpy as np

        from repro.trace.branch import GsharePredictor

        taken = taken[: len(pcs)]
        pcs_arr = np.asarray(pcs, dtype=np.int64)
        taken_arr = np.asarray(taken, dtype=bool)

        reset_guards(GuardConfig(check_rate=0))
        unchecked = GsharePredictor()
        fast = unchecked.update_batch(pcs_arr, taken_arr)

        reset_guards(checked_config())
        checked = GsharePredictor()
        guarded = checked.update_batch(pcs_arr, taken_arr)

        assert np.array_equal(fast, guarded)
        assert unchecked.predictions == checked.predictions
        assert unchecked.mispredictions == checked.mispredictions
        assert health_report().ok


# ---------------------------------------------------------------------------
# guardrails
# ---------------------------------------------------------------------------


class TestGuardrails:
    def test_record_policy_warns_and_logs(self):
        reset_guards(GuardConfig(guardrail_policy="record"))
        with pytest.warns(DegradedDataWarning, match="estimate"):
            check_estimates({"m": float("nan")})
        hits = health_report().guardrail_hits
        assert len(hits) == 1 and hits[0].stage == "estimate"

    def test_raise_policy(self):
        reset_guards(GuardConfig(guardrail_policy="raise"))
        with pytest.raises(GuardrailViolation, match="bound-violation"):
            check_bound_violation(-1.0)

    def test_off_policy(self):
        reset_guards(GuardConfig(guardrail_policy="off"))
        check_estimates({"m": float("inf")})
        check_bound_violation(math.nan)
        guardrail_hit("anything", "ignored")
        assert not health_report().guardrail_hits

    def test_monotone_front_passes(self):
        reset_guards(GuardConfig(guardrail_policy="record"))
        check_pareto_front([(3.0, 1.0), (2.0, 2.0), (1.0, 3.0)])
        assert not health_report().guardrail_hits

    def test_non_monotone_front_hits(self):
        reset_guards(GuardConfig(guardrail_policy="record"))
        with pytest.warns(DegradedDataWarning, match="non-monotone"):
            check_pareto_front([(1.0, 1.0), (2.0, 2.0)])
        assert health_report().guardrail_hits


# ---------------------------------------------------------------------------
# artifact integrity: headers, atomic writes, quarantine
# ---------------------------------------------------------------------------


class TestArtifacts:
    def test_header_round_trip(self):
        payload = attach_header({"value": [1, 2, 3]}, "spire-test/1")
        assert payload["header"]["format"] == "spire-test/1"
        assert payload["header"]["code_version"] == __version__
        assert verify_payload(payload, "spire-test/1") is None
        # Serialization order must not matter for the checksum.
        reparsed = json.loads(json.dumps(payload, sort_keys=True))
        assert verify_payload(reparsed, "spire-test/1") is None

    def test_tampered_content_detected(self):
        payload = attach_header({"value": 1}, "spire-test/1")
        payload["value"] = 2
        reason = verify_payload(payload, "spire-test/1")
        assert reason is not None and "checksum" in reason

    def test_schema_skew_detected(self):
        payload = attach_header({"value": 1}, "spire-test/1")
        reason = verify_payload(payload, "spire-test/2")
        assert reason is not None and "schema mismatch" in reason

    def test_missing_header_policy(self):
        assert verify_payload({"value": 1}, "spire-test/1") is not None
        assert (
            verify_payload({"value": 1}, "spire-test/1", require_header=False)
            is None
        )

    def test_checksum_ignores_header(self):
        body = {"value": 7}
        assert content_checksum(attach_header(dict(body), "s/1")) == (
            content_checksum(body)
        )

    def test_atomic_write(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text() == "second"
        # No stray temp files left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_quarantine_round_trip(self, tmp_path):
        victim = tmp_path / "bad.json"
        victim.write_text("{broken")
        destination = quarantine_file(victim, "test reason")
        assert destination is not None
        assert not victim.exists()
        assert destination.parent == quarantine_dir(tmp_path)
        assert destination.read_text() == "{broken"  # moved, never deleted
        recorded = health_report().artifacts_quarantined
        assert any(entry.startswith(str(destination)) for entry in recorded)

    def test_quarantine_collision_suffixes(self, tmp_path):
        names = set()
        for _ in range(3):
            victim = tmp_path / "bad.json"
            victim.write_text("x")
            destination = quarantine_file(victim, "dup")
            names.add(destination.name)
        assert len(names) == 3


# ---------------------------------------------------------------------------
# io/dataset integrity
# ---------------------------------------------------------------------------


class TestDatasetIntegrity:
    def make_samples(self):
        from repro.core.sample import Sample, SampleSet

        samples = SampleSet()
        samples.add(Sample("m", time=1.0, work=10.0, metric_count=5.0))
        samples.add(Sample("m", time=2.0, work=12.0, metric_count=0.0))
        return samples

    def test_csv_trailer_tamper_detected(self, tmp_path):
        from repro.io.dataset import load_samples_csv, save_samples_csv

        path = save_samples_csv(self.make_samples(), tmp_path / "s.csv")
        lines = path.read_text().splitlines()
        assert lines[-1].startswith("# spire-artifact:")
        lines[1] = lines[1].replace("1.0", "9.0", 1)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DataError, match="checksum mismatch"):
            load_samples_csv(path)
        assert not path.exists()  # quarantined, not deleted
        assert list(quarantine_dir(tmp_path).iterdir())

    def test_csv_without_trailer_still_loads(self, tmp_path):
        from repro.io.dataset import load_samples_csv, save_samples_csv

        path = save_samples_csv(self.make_samples(), tmp_path / "s.csv")
        body = "\n".join(
            line
            for line in path.read_text().splitlines()
            if not line.startswith("#")
        )
        path.write_text(body + "\n")
        assert len(load_samples_csv(path)) == 2

    def test_model_truncation_detected(self, tmp_path):
        from repro.core.ensemble import SpireModel
        from repro.core.roofline import fit_metric_roofline
        from repro.core.sample import Sample
        from repro.io.dataset import load_model, save_model

        samples = [
            Sample("m", time=1.0, work=float(w), metric_count=1.0)
            for w in (1, 2, 4, 8)
        ]
        model = SpireModel({"m": fit_metric_roofline(samples)})
        path = save_model(model, tmp_path / "model.json")
        payload = json.loads(path.read_text())
        payload["rooflines"] = {}
        path.write_text(json.dumps(payload))
        with pytest.raises(DataError, match="checksum mismatch"):
            load_model(path)
        assert not path.exists()

    def test_model_shape_validated(self, tmp_path):
        from repro.io.dataset import load_model

        path = tmp_path / "m.json"
        path.write_text(json.dumps({"not": "a model"}))
        with pytest.raises(DataError, match="rooflines"):
            load_model(path)
        path2 = tmp_path / "m2.json"
        path2.write_text(json.dumps({"rooflines": [1, 2]}))
        with pytest.raises(DataError, match="must be an object"):
            load_model(path2)


# ---------------------------------------------------------------------------
# doctor
# ---------------------------------------------------------------------------


class TestDoctor:
    def seed_cache(self, tmp_path):
        from repro.core.sample import Sample, SampleSet  # noqa: F401 - import check
        from repro.pipeline import ExperimentConfig, run_experiment

        config = ExperimentConfig(train_windows=24, test_windows=12)
        run_experiment(config, cache=tmp_path)
        return config

    def test_clean_dir_is_ok(self, tmp_path):
        self.seed_cache(tmp_path)
        report = doctor_cache_dir(tmp_path)
        assert report.ok
        assert report.entries_ok == 1
        assert "1/1 ok" in report.render()

    def test_truncated_entry_quarantined(self, tmp_path):
        self.seed_cache(tmp_path)
        entry = next(tmp_path.glob("*.json"))
        entry.write_text(entry.read_text()[: 100])
        report = doctor_cache_dir(tmp_path)
        assert not report.ok
        assert report.entries_quarantined
        assert "invalid JSON" in report.entries_quarantined[0][1]
        assert not entry.exists()
        assert list(quarantine_dir(tmp_path).iterdir())

    def test_version_skew_quarantined(self, tmp_path):
        self.seed_cache(tmp_path)
        entry = next(tmp_path.glob("*.json"))
        payload = json.loads(entry.read_text())
        payload["header"]["format"] = "spire-expcache/99"
        payload["format"] = "spire-expcache/99"
        entry.write_text(json.dumps(payload))
        report = doctor_cache_dir(tmp_path)
        assert not report.ok
        assert "schema mismatch" in report.entries_quarantined[0][1]

    def test_checksum_corruption_quarantined(self, tmp_path):
        self.seed_cache(tmp_path)
        entry = next(tmp_path.glob("*.json"))
        payload = json.loads(entry.read_text())
        payload["fingerprint"] = {"tampered": True}
        entry.write_text(json.dumps(payload))
        report = doctor_cache_dir(tmp_path)
        assert not report.ok
        assert "checksum mismatch" in report.entries_quarantined[0][1]

    def test_prune_empties_quarantine(self, tmp_path):
        self.seed_cache(tmp_path)
        entry = next(tmp_path.glob("*.json"))
        entry.write_text("garbage")
        doctor_cache_dir(tmp_path)
        report = doctor_cache_dir(tmp_path, prune=True)
        assert len(report.pruned) == 1
        assert not quarantine_dir(tmp_path).exists() or not list(
            quarantine_dir(tmp_path).iterdir()
        )

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(DataError):
            doctor_cache_dir(tmp_path / "nope")


# ---------------------------------------------------------------------------
# end-to-end: guard faults through the experiment pipeline
# ---------------------------------------------------------------------------


class TestGuardFaultsEndToEnd:
    def test_diverge_and_corrupt_cache_entry(self, tmp_path):
        from repro.pipeline import ExperimentConfig, run_experiment_with_report
        from repro.runtime.faults import (
            CORRUPT_CACHE_ENTRY,
            DIVERGE_KERNEL,
            FaultPlan,
            FaultSpec,
        )

        config = ExperimentConfig(train_windows=24, test_windows=12)
        baseline, _ = run_experiment_with_report(config, cache=tmp_path)

        reset_guards()
        faults = FaultPlan(
            specs=(
                FaultSpec(workload="train", kind=DIVERGE_KERNEL),
                FaultSpec(workload="*", kind=CORRUPT_CACHE_ENTRY),
            )
        )
        with pytest.warns(DegradedDataWarning):
            result, report = run_experiment_with_report(
                config, cache=tmp_path, faults=faults
            )

        assert report.health is not None
        assert report.health.tripped_kernels == ["train"]
        assert all(e.injected for e in report.health.divergences)
        assert report.health.artifacts_quarantined  # the corrupted entry
        # The injected divergence must not change any numbers.
        for name, run in (result.training_runs | result.testing_runs).items():
            ref = baseline.training_runs.get(name) or baseline.testing_runs[name]
            assert run.measured_ipc == ref.measured_ipc
            assert (
                run.collection.samples.to_records()
                == ref.collection.samples.to_records()
            )
        assert result.model.to_dict() == baseline.model.to_dict()

    def test_random_plan_draws_guard_faults_deterministically(self):
        from repro.runtime.faults import FaultPlan

        names = [f"w{i}" for i in range(8)]
        plan_a = FaultPlan.random(
            names, seed=11, diverge_kernels=2, corrupt_cache_entries=1
        )
        plan_b = FaultPlan.random(
            names, seed=11, diverge_kernels=2, corrupt_cache_entries=1
        )
        assert plan_a == plan_b
        assert len(plan_a.diverge_kernels()) == 2
        assert len(plan_a.cache_corruptions()) == 1
        # Older fault kinds keep their victims when new kinds are added.
        old = FaultPlan.random(names, seed=11, crashes=2)
        new = FaultPlan.random(
            names, seed=11, crashes=2, diverge_kernels=1, corrupt_cache_entries=1
        )
        assert new.specs[: len(old.specs)] == old.specs
        # Guard faults never count as workload injections.
        assert plan_a.injected_workloads() == []
