"""Unit tests for WindowSpec validation and helpers."""

import pytest

from repro.errors import ConfigError
from repro.uarch.spec import WindowSpec


class TestValidation:
    def test_defaults_valid(self):
        spec = WindowSpec()
        assert spec.instructions > 0

    def test_zero_instructions_rejected(self):
        with pytest.raises(ConfigError):
            WindowSpec(instructions=0)

    def test_uops_below_one_rejected(self):
        with pytest.raises(ConfigError):
            WindowSpec(uops_per_instruction=0.9)

    def test_mix_exceeding_one_rejected(self):
        with pytest.raises(ConfigError, match="sum"):
            WindowSpec(frac_loads=0.6, frac_stores=0.5)

    @pytest.mark.parametrize(
        "field",
        [
            "frac_loads",
            "dsb_coverage",
            "branch_mispredict_rate",
            "l1_miss_per_load",
            "lock_load_fraction",
            "vector_width_mix",
        ],
    )
    def test_rate_out_of_range_rejected(self, field):
        with pytest.raises(ConfigError):
            WindowSpec(**{field: 1.5})

    def test_mlp_below_one_rejected(self):
        with pytest.raises(ConfigError):
            WindowSpec(mlp=0.5)

    def test_ilp_below_half_rejected(self):
        with pytest.raises(ConfigError):
            WindowSpec(ilp=0.2)

    def test_negative_bubble_rate_rejected(self):
        with pytest.raises(ConfigError):
            WindowSpec(fe_bubble_rate=-0.1)


class TestHelpers:
    def test_scalar_remainder(self):
        spec = WindowSpec(frac_loads=0.3, frac_stores=0.1, frac_branches=0.1)
        assert spec.frac_scalar_alu == pytest.approx(0.5)

    def test_scalar_remainder_never_negative(self):
        spec = WindowSpec(frac_loads=0.5, frac_stores=0.3, frac_branches=0.2)
        assert spec.frac_scalar_alu == 0.0

    def test_with_instructions(self):
        spec = WindowSpec(instructions=100).with_instructions(500)
        assert spec.instructions == 500

    def test_scaled_pressure_scales_rates(self):
        spec = WindowSpec(branch_mispredict_rate=0.02, l1_miss_per_load=0.04)
        scaled = spec.scaled_pressure(2.0)
        assert scaled.branch_mispredict_rate == pytest.approx(0.04)
        assert scaled.l1_miss_per_load == pytest.approx(0.08)

    def test_scaled_pressure_clamps_to_one(self):
        spec = WindowSpec(branch_mispredict_rate=0.8)
        assert spec.scaled_pressure(10.0).branch_mispredict_rate == 1.0

    def test_scaled_pressure_identity(self):
        spec = WindowSpec()
        assert spec.scaled_pressure(1.0) == spec
