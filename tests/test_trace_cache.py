"""Unit tests for the set-associative cache hierarchy."""

import random

import pytest

from repro.errors import ConfigError
from repro.trace.cache import CacheHierarchy, SetAssociativeCache


class TestSetAssociativeCache:
    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache("bad", size=0)
        with pytest.raises(ConfigError):
            SetAssociativeCache("bad", size=1000, line=64, ways=8)

    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache("l1", 1024, line=64, ways=2)
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(32) is True  # same line
        assert cache.hits == 2 and cache.misses == 1

    def test_line_granularity(self):
        cache = SetAssociativeCache("l1", 1024, line=64, ways=2)
        cache.access(0)
        assert cache.access(63) is True
        assert cache.access(64) is False

    def test_lru_eviction(self):
        # 2-way set: third distinct line in the same set evicts the LRU.
        cache = SetAssociativeCache("l1", 2 * 64, line=64, ways=2)  # 1 set
        cache.access(0)
        cache.access(64)
        cache.access(0)          # 0 becomes MRU
        cache.access(128)        # evicts 64
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_working_set_within_capacity_hits(self):
        cache = SetAssociativeCache("l1", 32 * 1024, line=64, ways=8)
        addresses = [i * 64 for i in range(256)]  # 16 KiB
        for address in addresses:
            cache.access(address)
        cache.reset_stats()
        for _ in range(4):
            for address in addresses:
                cache.access(address)
        assert cache.miss_rate == 0.0

    def test_working_set_beyond_capacity_misses(self):
        cache = SetAssociativeCache("l1", 32 * 1024, line=64, ways=8)
        addresses = [i * 64 for i in range(1024)]  # 64 KiB, cyclic = thrash
        for _ in range(3):
            for address in addresses:
                cache.access(address)
        assert cache.miss_rate > 0.9

    def test_random_accesses_partial_hits(self):
        cache = SetAssociativeCache("l1", 32 * 1024, line=64, ways=8)
        rng = random.Random(0)
        addresses = [rng.randrange(48 * 1024) // 64 * 64 for _ in range(5000)]
        for address in addresses:
            cache.access(address)
        assert 0.0 < cache.miss_rate < 0.9


class TestCacheHierarchy:
    def test_levels_fill_downward(self):
        hierarchy = CacheHierarchy()
        first = hierarchy.access(0)
        assert first.level == "dram"
        second = hierarchy.access(0)
        assert second.level == "l1"

    def test_l2_serves_after_l1_eviction(self):
        hierarchy = CacheHierarchy(l1_size=1024, l2_size=64 * 1024)
        # Touch a 32 KiB set cyclically: thrashes the 1 KiB L1, lives in L2.
        addresses = [i * 64 for i in range(512)]
        for address in addresses:
            hierarchy.access(address)
        result = hierarchy.access(addresses[0])
        assert result.level == "l2"

    def test_latencies_increase_with_depth(self):
        hierarchy = CacheHierarchy()
        lat = hierarchy.latencies
        assert lat["l1"] < lat["l2"] < lat["l3"] < lat["dram"]

    def test_dram_counted(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0)
        hierarchy.access(1 << 30)
        assert hierarchy.dram_accesses == 2

    def test_reset_stats(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0)
        hierarchy.reset_stats()
        assert hierarchy.l1.misses == 0
        assert hierarchy.dram_accesses == 0
