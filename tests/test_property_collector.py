"""Property-based tests for sample collection invariants.

Whatever the window count, period length, or scheduler, a collection must
satisfy the paper's §III-A data contract: positive shared (T, W) per
sample, per-metric T never exceeding the run's total cycles, the full
(un-multiplexed) counter view consistent with the run totals, and — in
unmultiplexed mode — a rectangular sample matrix with shared T/W per
period.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counters import CollectionConfig, SampleCollector
from repro.uarch import CoreModel, skylake_gold_6126
from repro.workloads.generator import random_spec

EVENTS = (
    "idq.dsb_uops",
    "br_misp_retired.all_branches",
    "longest_lat_cache.miss",
    "resource_stalls.any",
    "idq.ms_switches",
    "cycle_activity.stalls_total",
)


@st.composite
def collection_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_windows = draw(st.integers(min_value=1, max_value=60))
    period = draw(st.integers(min_value=1, max_value=20))
    multiplex = draw(st.booleans())
    return seed, n_windows, period, multiplex


@settings(max_examples=40, deadline=None)
@given(collection_cases())
def test_collection_invariants(case):
    seed, n_windows, period, multiplex = case
    machine = skylake_gold_6126()
    rng = random.Random(seed)
    specs = [random_spec(rng).with_instructions(2_000) for _ in range(n_windows)]
    collector = SampleCollector(
        machine,
        config=CollectionConfig(
            windows_per_period=period, events=EVENTS, multiplex=multiplex
        ),
    )
    result = collector.collect(CoreModel(machine), specs, rng=random.Random(seed))

    assert result.total_cycles > 0
    assert result.total_instructions == 2_000 * n_windows
    assert 0 < result.measured_ipc <= machine.pipeline_width

    # Every sample: positive period, work/time consistent with the run.
    for sample in result.samples:
        assert sample.time > 0
        assert sample.time <= result.total_cycles + 1e-6
        assert sample.work <= result.total_instructions + 1e-6

    # Per-metric total observation time never exceeds the run.
    for metric in result.samples.metrics():
        assert (
            result.samples.total_time(metric) <= result.total_cycles + 1e-6
        )

    # The full-count view matches the run totals for the fixed counters.
    assert result.full_counts["inst_retired.any"] == pytest.approx(
        result.total_instructions
    )
    assert result.full_counts["cpu_clk_unhalted.thread"] == pytest.approx(
        result.total_cycles
    )

    if multiplex:
        assert result.overhead_cycles == pytest.approx(
            n_windows * collector.config.switch_overhead_cycles
        )
    else:
        # Rectangular: every metric has one sample per period with shared
        # T and W.
        grouped = result.samples.grouped()
        lengths = {len(group) for group in grouped.values()}
        assert len(lengths) == 1
        for index in range(lengths.pop()):
            times = {round(group[index].time, 6) for group in grouped.values()}
            works = {round(group[index].work, 6) for group in grouped.values()}
            assert len(times) == 1
            assert len(works) == 1


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_multiplexed_metric_times_partition_the_run(seed):
    """With round-robin multiplexing, the groups' observation times sum to
    (at most) the run's total cycles — slices don't overlap."""
    machine = skylake_gold_6126()
    rng = random.Random(seed)
    specs = [random_spec(rng).with_instructions(2_000) for _ in range(36)]
    collector = SampleCollector(
        machine,
        config=CollectionConfig(windows_per_period=12, events=EVENTS),
    )
    result = collector.collect(CoreModel(machine), specs, rng=random.Random(seed))
    groups = collector._event_groups()
    group_time = 0.0
    for group in groups:
        # All metrics in a group share slices; count each group once via
        # its first metric.
        group_time += result.samples.total_time(group[0])
    assert group_time == pytest.approx(result.total_cycles, rel=1e-6)
