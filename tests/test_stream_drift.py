"""Acceptance tests for the refute-and-refine drift ladder.

The scenario the tentpole promises: a trained model watches a live
stream; when one metric's samples refute its roofline, exactly that
metric is quarantined and refit from recent windows while every other
metric's roofline stays *bit-identical* — and repeated refutation walks
the ladder down to a stale verdict that demands a batch retrain.

The streams here replay the model's own training samples, so the
fault-free baseline is clean by construction (every roofline is an upper
bound of its training data).
"""

import random

import numpy as np
import pytest

from repro.core.ensemble import SpireModel, TrainOptions
from repro.core.sample import Sample, SampleSet
from repro.errors import ConfigError
from repro.guard.dispatch import registry, reset_guards
from repro.runtime.faults import (
    DRIFT_INJECT,
    STALE_WINDOW,
    FaultPlan,
    FaultSpec,
)
from repro.stream import (
    DriftMonitor,
    DriftPolicy,
    StreamOptions,
    replay_stream,
    windows_from_records,
)

METRICS = ("llc.miss", "br.misp", "tlb.walk")


def _make_records(rng, per_window=12, windows=6):
    """A deterministic multi-metric log with roofline-shaped throughput."""
    records = []
    for _ in range(windows * per_window):
        metric = rng.choice(METRICS)
        x = rng.uniform(0.5, 64.0)
        peak = 4.0 + 2.0 * METRICS.index(metric)
        y = min(x, peak) * rng.uniform(0.5, 1.0)
        time = rng.uniform(1.0, 4.0)
        work = y * time
        records.append(
            {
                "metric": metric,
                "time": time,
                "work": work,
                "metric_count": work / x,
            }
        )
    return records


@pytest.fixture(autouse=True)
def _fresh_guards():
    reset_guards()
    yield
    reset_guards()


@pytest.fixture
def trained():
    rng = random.Random(4242)
    records = _make_records(rng)
    samples = SampleSet(
        [
            Sample(
                r["metric"],
                time=r["time"],
                work=r["work"],
                metric_count=r["metric_count"],
            )
            for r in records
        ]
    )
    model = SpireModel.train(samples)
    windows = windows_from_records(records, 12)
    return model, windows


class TestCleanBaseline:
    def test_training_replay_never_drifts(self, trained):
        model, windows = trained
        result = replay_stream(windows, model=model)
        assert result.report.ok
        assert result.events == []
        assert not result.report.stale
        # Everything still reference-owned and served verbatim.
        for metric in model.metrics:
            assert result.model.roofline(metric).to_dict(
                include_training=True
            ) == model.roofline(metric).to_dict(include_training=True)


class TestDriftInjection:
    VICTIM = "llc.miss"

    def _fault(self, window=2, factor=4.0):
        return FaultPlan(
            specs=(
                FaultSpec(
                    workload=self.VICTIM,
                    kind=DRIFT_INJECT,
                    factor=factor,
                    window=window,
                ),
            )
        )

    def test_victim_is_refuted_and_refit(self, trained):
        model, windows = trained
        result = replay_stream(windows, model=model, faults=self._fault())
        actions = {e.action for e in result.events if e.metric == self.VICTIM}
        assert "refit" in actions
        assert self.VICTIM in result.ingestor.stream_metrics
        assert self.VICTIM not in result.ingestor.reference_metrics
        assert result.report.refit_counts.get(self.VICTIM, 0) >= 1

    def test_bystanders_stay_bit_identical(self, trained):
        model, windows = trained
        baseline = replay_stream(windows, model=model)
        faulted = replay_stream(windows, model=model, faults=self._fault())
        for metric in METRICS:
            if metric == self.VICTIM:
                continue
            assert faulted.model.roofline(metric).to_dict(
                include_training=True
            ) == baseline.model.roofline(metric).to_dict(
                include_training=True
            )
        assert {e.metric for e in faulted.events} == {self.VICTIM}

    def test_refit_model_covers_drifted_samples(self, trained):
        """After repair the served bound covers the shifted regime."""
        model, windows = trained
        result = replay_stream(windows, model=model, faults=self._fault())
        roofline = result.model.roofline(self.VICTIM)
        last = windows[-1]
        for record in last:
            if record["metric"] != self.VICTIM:
                continue
            x = 4.0 * record["work"] / (4.0 * record["metric_count"])
            y = 4.0 * record["work"] / record["time"]
            bound = roofline.estimate(x)
            assert bound >= y - 1e-6 * max(1.0, y)

    def test_drift_surfaces_on_health_report(self, trained):
        model, windows = trained
        replay_stream(windows, model=model, faults=self._fault())
        health = registry().health_report()
        assert self.VICTIM in health.drifted_metrics
        assert not health.ok
        assert "drift" in health.render()

    def test_repeated_refutation_goes_stale(self, trained):
        model, windows = trained
        policy = DriftPolicy(max_refits=1)
        # Re-drift the victim with a *growing* factor each window so every
        # refit's bound is refuted again by the next window.
        plan = FaultPlan(
            specs=tuple(
                FaultSpec(
                    workload=self.VICTIM,
                    kind=DRIFT_INJECT,
                    factor=8.0,
                    window=w,
                )
                for w in range(2, len(windows))
            )
        )
        result = replay_stream(
            windows,
            model=model,
            options=StreamOptions(policy=policy),
            faults=plan,
        )
        assert result.report.stale
        assert "max_refits" in result.report.stale_reason
        actions = [e.action for e in result.events if e.metric == self.VICTIM]
        assert "stale" in actions
        assert "STALE" in result.report.render()

    def test_quarantined_when_too_few_recent_samples(self, trained):
        model, windows = trained
        options = StreamOptions(
            policy=DriftPolicy(refit_history=1),
            train=TrainOptions(min_samples_per_metric=64),
        )
        result = replay_stream(
            windows, model=model, options=options, faults=self._fault()
        )
        quarantines = [
            e for e in result.events if e.action == "quarantined"
        ]
        assert quarantines and quarantines[0].metric == self.VICTIM
        assert self.VICTIM in result.report.quarantined_metrics
        # Withheld from serving: the victim is in no served ensemble.
        assert self.VICTIM not in result.model.metrics


class TestNoModelStream:
    def test_learns_from_scratch_with_warmup(self, trained):
        _, windows = trained
        result = replay_stream(windows, options=StreamOptions())
        assert result.model is not None
        assert set(result.model.metrics) == set(METRICS)
        for metric in METRICS:
            assert metric in result.ingestor.stream_metrics

    def test_stale_window_stalls_and_quarantines_late_data(self, trained):
        from repro.errors import DegradedDataWarning

        model, windows = trained
        plan = FaultPlan(
            specs=(FaultSpec(workload="*", kind=STALE_WINDOW, window=2),)
        )
        with pytest.warns(DegradedDataWarning, match="out-of-order"):
            result = replay_stream(windows, model=model, faults=plan)
        stalls = [e for e in result.events if e.action == "stalled"]
        assert [e.window for e in stalls] == [2]
        reasons = [q.reason for q in result.quality.quarantined]
        assert "out-of-order timestamp" in reasons


class TestDriftMonitorUnit:
    def _roofline(self):
        samples = SampleSet(
            [
                Sample("m", time=1.0, work=min(x, 8.0), metric_count=min(x, 8.0) / x)
                for x in (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0)
            ]
        )
        return SpireModel.train(samples).roofline("m")

    def test_clean_absorbed_refuted_ladder(self):
        monitor = DriftMonitor(DriftPolicy(min_violations=3))
        roofline = self._roofline()
        xs = np.asarray([1.0, 2.0, 4.0, 16.0])
        clean = monitor.assess(roofline, xs, np.asarray([0.5, 1.0, 2.0, 4.0]))
        assert clean.verdict == "clean"
        absorbed = monitor.assess(
            roofline, xs, np.asarray([5.0, 1.0, 2.0, 4.0])
        )
        assert absorbed.verdict == "absorbed"
        assert absorbed.violations == 1
        refuted = monitor.assess(roofline, xs, np.asarray([5.0, 9.0, 9.0, 9.0]))
        assert refuted.verdict == "refuted"
        assert refuted.worst_excess > 0

    def test_empty_window_is_clean(self):
        monitor = DriftMonitor()
        verdict = monitor.assess(
            self._roofline(), np.asarray([]), np.asarray([])
        )
        assert verdict.verdict == "clean"
        assert verdict.samples == 0

    def test_note_refit_counts_to_stale(self):
        monitor = DriftMonitor(DriftPolicy(max_refits=2))
        assert monitor.note_refit("m") is False
        assert monitor.note_refit("m") is False
        assert monitor.note_refit("m") is True
        assert monitor.refit_counts == {"m": 3}

    def test_window_stale_fraction(self):
        monitor = DriftMonitor(DriftPolicy(stale_fraction=0.5))
        assert not monitor.window_stale(4, 2)
        assert monitor.window_stale(4, 3)
        assert not monitor.window_stale(0, 0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tolerance": -1.0},
            {"min_violations": 0},
            {"refute_fraction": 0.0},
            {"refute_fraction": 1.5},
            {"max_refits": 0},
            {"stale_fraction": 0.0},
            {"refit_history": 0},
        ],
    )
    def test_policy_validation(self, kwargs):
        with pytest.raises(ConfigError):
            DriftPolicy(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [{"window_samples": 0}, {"warmup_windows": 0}],
    )
    def test_stream_options_validation(self, kwargs):
        with pytest.raises(ConfigError):
            StreamOptions(**kwargs)
