"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.sample import Sample, SampleSet
from repro.pipeline import ExperimentConfig, run_experiment
from repro.uarch import CoreModel, skylake_gold_6126
from repro.uarch.spec import WindowSpec


@pytest.fixture
def machine():
    return skylake_gold_6126()


@pytest.fixture
def core(machine):
    return CoreModel(machine)


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def base_spec():
    return WindowSpec(instructions=10_000)


def make_metric_samples(
    metric: str,
    curve,
    rng: random.Random,
    count: int = 300,
    intensity_range: tuple[float, float] = (0.5, 100.0),
    work: float = 10_000.0,
) -> list[Sample]:
    """Samples whose throughput lies on/below ``curve(intensity)``."""
    samples = []
    lo, hi = intensity_range
    for _ in range(count):
        intensity = rng.uniform(lo, hi)
        throughput = curve(intensity) * rng.uniform(0.3, 1.0)
        samples.append(
            Sample(
                metric=metric,
                time=work / max(1e-9, throughput),
                work=work,
                metric_count=work / intensity,
            )
        )
    return samples


@pytest.fixture
def negative_metric_samples(rng):
    """A harmful metric: throughput rises with intensity, saturating."""
    return make_metric_samples(
        "stalls", lambda i: 4.0 * i / (i + 6.0), rng, count=400
    )


@pytest.fixture
def positive_metric_samples(rng):
    """A helpful metric: throughput falls as its events become rarer."""
    return make_metric_samples(
        "dsb_uops", lambda i: 4.0 * 3.0 / (3.0 + i), rng, count=400
    )


@pytest.fixture
def two_metric_sampleset(negative_metric_samples, positive_metric_samples):
    return SampleSet(negative_metric_samples + positive_metric_samples)


@pytest.fixture(scope="session")
def small_experiment():
    """A scaled-down full-paper experiment shared across integration tests."""
    return run_experiment(ExperimentConfig(train_windows=400, test_windows=200))
