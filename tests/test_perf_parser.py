"""Unit tests for the perf stat output parser."""

import io
import math

import pytest

from repro.counters.perf_parser import (
    PerfStatParser,
    parse_perf_lines,
    parse_perf_stat,
)
from repro.errors import ParseError

INTERVAL_TEXT = """\
# started on Mon Jul  6 10:00:00 2026
1.000234,1000000,,instructions,1999881203,100.00,0.85,insn per cycle
1.000234,1450034,,cycles,1999881203,100.00,,
1.000234,8123,,br_misp_retired.all_branches,499970301,25.00,,
1.000234,995,,longest_lat_cache.miss,499970301,25.00,,
3.000456,2000000,,instructions,1999881203,100.00,0.91,insn per cycle
3.000456,2250034,,cycles,1999881203,100.00,,
3.000456,<not counted>,,br_misp_retired.all_branches,0,0.00,,
3.000456,1995,,longest_lat_cache.miss,499970301,25.00,,
"""

SINGLE_SHOT_TEXT = """\
5000000,,instructions,2000000000,100.00,,
7000000,,cycles,2000000000,100.00,,
12345,,cache-misses,2000000000,100.00,,
"""


class TestLineParser:
    def test_parses_interval_records(self):
        records = parse_perf_lines(io.StringIO(INTERVAL_TEXT))
        assert len(records) == 8
        assert records[0].timestamp == pytest.approx(1.000234)
        assert records[0].event == "instructions"
        assert records[0].value == pytest.approx(1_000_000)

    def test_skips_comments_and_blanks(self):
        text = "# comment\n\n" + SINGLE_SHOT_TEXT
        records = parse_perf_lines(io.StringIO(text))
        assert len(records) == 3

    def test_not_counted_becomes_none(self):
        records = parse_perf_lines(io.StringIO(INTERVAL_TEXT))
        missing = [r for r in records if r.value is None]
        assert len(missing) == 1
        assert missing[0].event == "br_misp_retired.all_branches"

    def test_single_shot_has_no_timestamp(self):
        records = parse_perf_lines(io.StringIO(SINGLE_SHOT_TEXT))
        assert all(r.timestamp is None for r in records)

    def test_empty_input_rejected(self):
        with pytest.raises(ParseError):
            parse_perf_lines(io.StringIO(""))

    def test_too_few_fields_rejected(self):
        with pytest.raises(ParseError):
            parse_perf_lines(io.StringIO("only_one_field\n"))

    def test_empty_event_name_rejected(self):
        with pytest.raises(ParseError, match="empty event"):
            parse_perf_lines(io.StringIO("1.0,100,, ,200,100.0\n"))

    def test_run_time_and_enabled_parsed(self):
        records = parse_perf_lines(io.StringIO(INTERVAL_TEXT))
        assert records[2].run_time == pytest.approx(499970301)
        assert records[2].enabled_percent == pytest.approx(25.0)


class TestSampleBuilding:
    def test_interval_samples(self):
        samples = parse_perf_stat(INTERVAL_TEXT)
        # Interval 1: two metrics; interval 2: one (mispredicts not counted).
        assert len(samples) == 3
        assert sorted(samples.metrics()) == [
            "br_misp_retired.all_branches",
            "longest_lat_cache.miss",
        ]

    def test_sample_values(self):
        samples = parse_perf_stat(INTERVAL_TEXT)
        bp = samples.for_metric("br_misp_retired.all_branches")[0]
        assert bp.work == pytest.approx(1_000_000)
        assert bp.time == pytest.approx(1_450_034)
        assert bp.metric_count == pytest.approx(8_123)
        assert bp.intensity == pytest.approx(1_000_000 / 8_123)

    def test_single_shot_mode(self):
        samples = parse_perf_stat(SINGLE_SHOT_TEXT)
        assert len(samples) == 1
        sample = samples.for_metric("cache-misses")[0]
        assert sample.throughput == pytest.approx(5 / 7)

    def test_custom_work_time_events(self):
        text = (
            "100,,uops_retired.retire_slots,1,100\n"
            "400,,ref-cycles,1,100\n"
            "7,,some.metric,1,100\n"
        )
        parser = PerfStatParser(
            work_event="uops_retired.retire_slots", time_event="ref-cycles"
        )
        samples = parser.parse(text)
        assert samples.for_metric("some.metric")[0].throughput == pytest.approx(0.25)

    def test_missing_work_event_rejected(self):
        text = "1000,,cycles,1,100\n55,,some.metric,1,100\n"
        with pytest.raises(ParseError, match="no usable intervals"):
            parse_perf_stat(text)

    def test_interval_without_cycles_skipped(self):
        text = (
            "1.0,1000,,instructions,1,100\n"
            "1.0,10,,some.metric,1,100\n"
            "2.0,1000,,instructions,1,100\n"
            "2.0,1500,,cycles,1,100\n"
            "2.0,20,,some.metric,1,100\n"
        )
        samples = parse_perf_stat(text)
        assert len(samples) == 1
        assert samples.for_metric("some.metric")[0].metric_count == 20

    def test_file_object_input(self):
        samples = PerfStatParser().parse(io.StringIO(INTERVAL_TEXT))
        assert len(samples) == 3

    def test_zero_count_metric_gives_infinite_intensity(self):
        text = (
            "1000,,instructions,1,100\n"
            "1500,,cycles,1,100\n"
            "0,,rare.event,1,100\n"
        )
        samples = parse_perf_stat(text)
        assert math.isinf(samples.for_metric("rare.event")[0].intensity)

    def test_custom_separator(self):
        text = INTERVAL_TEXT.replace(",", ";")
        samples = parse_perf_stat(text, separator=";")
        assert len(samples) == 3


JSON_TEXT = """\
{"interval": 1.000123, "counter-value": "1000000.0", "event": "instructions", "event-runtime": 1999881203, "pcnt-running": 100.0}
{"interval": 1.000123, "counter-value": "1450034.0", "event": "cycles", "event-runtime": 1999881203, "pcnt-running": 100.0}
{"interval": 1.000123, "counter-value": "8123.0", "event": "br_misp_retired.all_branches", "event-runtime": 499970301, "pcnt-running": 25.0}
{"interval": 3.000456, "counter-value": "2000000.0", "event": "instructions"}
{"interval": 3.000456, "counter-value": "2250034.0", "event": "cycles"}
{"interval": 3.000456, "counter-value": "<not counted>", "event": "br_misp_retired.all_branches"}
{"interval": 3.000456, "counter-value": "1995.0", "event": "longest_lat_cache.miss"}
"""


class TestJsonParser:
    def test_parses_intervals(self):
        from repro.counters.perf_parser import parse_perf_json

        samples = parse_perf_json(JSON_TEXT)
        assert len(samples) == 2
        assert sorted(samples.metrics()) == [
            "br_misp_retired.all_branches",
            "longest_lat_cache.miss",
        ]

    def test_values_match_csv_semantics(self):
        from repro.counters.perf_parser import parse_perf_json

        samples = parse_perf_json(JSON_TEXT)
        bp = samples.for_metric("br_misp_retired.all_branches")[0]
        assert bp.work == pytest.approx(1_000_000)
        assert bp.time == pytest.approx(1_450_034)
        assert bp.metric_count == pytest.approx(8_123)

    def test_single_shot_json(self):
        from repro.counters.perf_parser import parse_perf_json

        text = (
            '{"counter-value": "100.0", "event": "instructions"}\n'
            '{"counter-value": "400.0", "event": "cycles"}\n'
            '{"counter-value": "7.0", "event": "some.metric"}\n'
        )
        samples = parse_perf_json(text)
        assert samples.for_metric("some.metric")[0].throughput == pytest.approx(0.25)

    def test_invalid_json_rejected(self):
        from repro.counters.perf_parser import parse_perf_json

        with pytest.raises(ParseError, match="invalid JSON"):
            parse_perf_json("{broken\n")

    def test_missing_event_rejected(self):
        from repro.counters.perf_parser import parse_perf_json

        with pytest.raises(ParseError, match="missing event"):
            parse_perf_json('{"counter-value": "1.0"}\n')

    def test_empty_input_rejected(self):
        from repro.counters.perf_parser import parse_perf_json

        with pytest.raises(ParseError):
            parse_perf_json("\n# comment only\n")
