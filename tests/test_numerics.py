"""Numerical robustness at the extremes.

Operational intensities span many orders of magnitude (the paper's log
plots run 1e0..1e6+); these tests pin down behaviour at the edges —
huge/tiny values, near-duplicate breakpoints, extreme sample magnitudes —
where naive float handling would silently corrupt fits.
"""

import math

import pytest

from repro.core.roofline import fit_metric_roofline
from repro.core.sample import Sample
from repro.geometry.piecewise import PiecewiseLinear


def sample(metric, intensity, throughput, work=1.0):
    return Sample(
        metric, time=work / throughput, work=work, metric_count=work / intensity
    )


class TestPiecewiseExtremes:
    def test_huge_x_interpolation(self):
        f = PiecewiseLinear([(1e-12, 1.0), (1e12, 2.0)])
        assert 1.0 <= f(1e6) <= 2.0
        assert f(1e300) == 2.0

    def test_tiny_segment(self):
        f = PiecewiseLinear([(1.0, 1.0), (1.0 + 1e-12, 2.0)])
        assert f(0.5) == 1.0
        assert f(2.0) == 2.0
        value = f(1.0 + 5e-13)
        assert 1.0 <= value <= 2.0

    def test_huge_y_values(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 1e18)])
        assert f(0.5) == pytest.approx(5e17)

    def test_many_breakpoints_evaluation(self):
        points = [(float(i), float(i % 7)) for i in range(10_000)]
        points = [(x, y) for x, y in points]
        # Monotone x is required; y is arbitrary.
        f = PiecewiseLinear(points)
        assert f(5_000.5) == pytest.approx(
            (points[5000][1] + points[5001][1]) / 2
        )

    def test_upper_bound_check_scales_with_magnitude(self):
        f = PiecewiseLinear([(0.0, 0.0), (1.0, 1e15)])
        # A violation of absolute size 1 is far below the relative
        # tolerance at this magnitude.
        assert f.is_upper_bound_of([(1.0, 1e15 + 1.0)])
        # But a 1% violation is caught.
        assert not f.is_upper_bound_of([(1.0, 1.01e15)])


class TestFittingExtremes:
    def test_intensities_spanning_12_decades(self):
        samples = [
            sample("m", 10.0**k, max(0.1, min(4.0, 0.5 * k + 0.5)))
            for k in range(-6, 7)
        ]
        roofline = fit_metric_roofline(samples)
        assert roofline.is_upper_bound_of_training_data()
        assert roofline.estimate(1e-7) >= 0.0
        assert roofline.estimate(1e9) > 0.0

    def test_near_duplicate_intensities(self):
        samples = [
            sample("m", 1.0 + i * 1e-12, 1.0 + i * 0.1) for i in range(5)
        ]
        roofline = fit_metric_roofline(samples)
        assert roofline.is_upper_bound_of_training_data()

    def test_identical_samples(self):
        samples = [sample("m", 5.0, 2.0) for _ in range(20)]
        roofline = fit_metric_roofline(samples)
        assert roofline.estimate(5.0) == pytest.approx(2.0)
        assert roofline.estimate(500.0) == pytest.approx(2.0)

    def test_extreme_work_magnitudes(self):
        # Billions of instructions per sample (realistic for 2 s periods on
        # a GHz-class core) must not overflow anything.
        samples = [
            Sample("m", time=2.6e9 * (1 + i % 3), work=2e9, metric_count=1e6 / (1 + i))
            for i in range(50)
        ]
        roofline = fit_metric_roofline(samples)
        assert roofline.is_upper_bound_of_training_data()
        assert 0 < roofline.apex.y < 10.0

    def test_tiny_throughputs(self):
        samples = [sample("m", float(i + 1), 1e-9 * (i + 1)) for i in range(10)]
        roofline = fit_metric_roofline(samples)
        assert roofline.is_upper_bound_of_training_data()
        assert roofline.apex.y == pytest.approx(1e-8)

    def test_single_zero_work_sample(self):
        zero = Sample("m", time=10.0, work=0.0, metric_count=5.0)
        roofline = fit_metric_roofline([zero])
        assert roofline.estimate(0.0) == 0.0
        assert roofline.estimate(100.0) == 0.0

    def test_mixed_zero_and_normal(self):
        samples = [
            Sample("m", time=10.0, work=0.0, metric_count=5.0),
            sample("m", 4.0, 2.0),
            sample("m", 9.0, 1.0),
        ]
        roofline = fit_metric_roofline(samples)
        assert roofline.is_upper_bound_of_training_data()
        assert roofline.estimate(0.0) == 0.0


class TestEstimationExtremes:
    def test_estimate_far_outside_training_range(self):
        samples = [sample("m", i, 1.0) for i in (1.0, 2.0, 4.0)]
        roofline = fit_metric_roofline(samples)
        assert roofline.estimate(1e-300) >= 0.0
        assert roofline.estimate(1e300) == roofline.estimate(4.0)
        assert roofline.estimate(math.inf) == roofline.estimate(1e300)

    def test_time_weighted_average_extreme_weights(self):
        from repro.core.sample import time_weighted_average

        value = time_weighted_average([1.0, 2.0], [1e-9, 1e9])
        assert value == pytest.approx(2.0, rel=1e-6)
