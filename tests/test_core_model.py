"""Unit tests for the core model (window simulation)."""

import random

import pytest

from repro.uarch.core import CoreModel, jitter_spec
from repro.uarch.spec import WindowSpec


class TestDeterministicSimulation:
    def test_deterministic_without_rng(self, core, base_spec):
        a = core.simulate_window(base_spec)
        b = core.simulate_window(base_spec)
        assert a.cycles == b.cycles
        assert a.ipc == b.ipc

    def test_cycle_components_sum(self, core, base_spec):
        activity = core.simulate_window(base_spec)
        activity.check_consistency()

    def test_cycle_components_sum_with_noise(self, core, base_spec):
        activity = core.simulate_window(base_spec, random.Random(1))
        activity.check_consistency()

    def test_instructions_preserved(self, core, base_spec):
        activity = core.simulate_window(base_spec)
        assert activity.instructions == base_spec.instructions

    def test_ipc_positive_and_bounded(self, core, base_spec):
        activity = core.simulate_window(base_spec)
        assert 0 < activity.ipc <= core.machine.pipeline_width

    def test_uop_flow_ordering(self, core):
        spec = WindowSpec(frac_branches=0.2, branch_mispredict_rate=0.05)
        activity = core.simulate_window(spec)
        assert activity.uops_retired <= activity.uops_executed <= activity.uops_issued

    def test_simulate_run(self, core, base_spec):
        activities = core.simulate_run([base_spec] * 5)
        assert len(activities) == 5


class TestBottleneckMonotonicity:
    """Each injected cause must reduce IPC — the property SPIRE learns."""

    def _ipc(self, core, **kwargs):
        return core.simulate_window(WindowSpec(**kwargs)).ipc

    def test_mispredicts_hurt(self, core):
        good = self._ipc(core, branch_mispredict_rate=0.0)
        bad = self._ipc(core, branch_mispredict_rate=0.1)
        assert bad < good

    def test_cache_misses_hurt(self, core):
        good = self._ipc(core, l1_miss_per_load=0.0)
        bad = self._ipc(core, l1_miss_per_load=0.2)
        assert bad < good

    def test_low_dsb_coverage_hurts(self, core):
        good = self._ipc(core, dsb_coverage=1.0)
        bad = self._ipc(core, dsb_coverage=0.0)
        assert bad < good

    def test_low_ilp_hurts(self, core):
        good = self._ipc(core, ilp=6.0)
        bad = self._ipc(core, ilp=1.0)
        assert bad < good

    def test_divides_hurt(self, core):
        good = self._ipc(core, frac_divides=0.0)
        bad = self._ipc(core, frac_divides=0.02)
        assert bad < good

    def test_lock_loads_hurt(self, core):
        good = self._ipc(core, lock_load_fraction=0.0)
        bad = self._ipc(core, lock_load_fraction=0.02)
        assert bad < good

    def test_fe_bubbles_hurt(self, core):
        good = self._ipc(core, fe_bubble_rate=0.0)
        bad = self._ipc(core, fe_bubble_rate=0.05)
        assert bad < good

    def test_mlp_helps(self, core):
        slow = self._ipc(core, l1_miss_per_load=0.1, mlp=1.0)
        fast = self._ipc(core, l1_miss_per_load=0.1, mlp=8.0)
        assert fast > slow

    def test_microcode_hurts(self, core):
        good = self._ipc(core, microcode_fraction=0.0)
        bad = self._ipc(core, microcode_fraction=0.3)
        assert bad < good


class TestJitter:
    def test_jitter_preserves_validity(self, base_spec):
        rng = random.Random(0)
        for _ in range(50):
            jittered = jitter_spec(base_spec, rng, 0.5)
            assert 0.0 <= jittered.branch_mispredict_rate <= 1.0
            assert 0.0 <= jittered.dsb_coverage <= 1.0
            assert jittered.mlp >= 1.0
            assert jittered.ilp >= 0.5

    def test_zero_scale_is_identity(self, base_spec):
        assert jitter_spec(base_spec, random.Random(0), 0.0) == base_spec

    def test_rng_spreads_ipc(self, core, base_spec):
        rng = random.Random(7)
        ipcs = {round(core.simulate_window(base_spec, rng).ipc, 6) for _ in range(20)}
        assert len(ipcs) > 10

    def test_seeded_runs_reproducible(self, core, base_spec):
        a = [core.simulate_window(base_spec, random.Random(3)).cycles for _ in range(3)]
        b = [core.simulate_window(base_spec, random.Random(3)).cycles for _ in range(3)]
        assert a == b


class TestActivityDetails:
    def test_port_histogram_partition(self, core, base_spec):
        activity = core.simulate_window(base_spec)
        total = (
            activity.exec_cycles_1_port
            + activity.exec_cycles_2_ports
            + activity.exec_cycles_3_plus_ports
        )
        assert total == pytest.approx(activity.exec_active_cycles)

    def test_exec_active_within_cycles(self, core, base_spec):
        activity = core.simulate_window(base_spec)
        assert 0 < activity.exec_active_cycles <= activity.cycles

    def test_wasted_uops_capped(self, core):
        spec = WindowSpec(frac_branches=0.3, branch_mispredict_rate=1.0)
        activity = core.simulate_window(spec)
        assert activity.wasted_uops <= 0.6 * activity.uops

    def test_merged_activity(self, core, base_spec):
        a = core.simulate_window(base_spec)
        b = core.simulate_window(base_spec)
        merged = a.merged_with(b)
        assert merged.instructions == a.instructions + b.instructions
        assert merged.cycles == pytest.approx(a.cycles + b.cycles)
        for port, count in merged.port_uops.items():
            assert count == pytest.approx(a.port_uops[port] + b.port_uops[port])
