"""Unit tests for training-data coverage diagnostics."""

import math

import pytest

from repro.core.coverage import coverage_report
from repro.core.sample import Sample, SampleSet
from repro.errors import DataError


def sample(metric, intensity, throughput=1.0, work=1000.0):
    count = 0.0 if math.isinf(intensity) else work / intensity
    return Sample(metric, time=work / throughput, work=work, metric_count=count)


def wide_set(metric="wide", n=100):
    return [sample(metric, 10.0 ** (i % 5), throughput=1.0 + i % 3) for i in range(n)]


class TestCoverageReport:
    def test_decades_computed(self):
        report = coverage_report(SampleSet(wide_set()), min_samples=10)
        entry = report.for_metric("wide")
        assert entry.intensity_decades == pytest.approx(4.0)
        assert entry.sample_count == 100
        assert entry.peak_throughput == 3.0

    def test_adequate_when_wide_and_dense(self):
        report = coverage_report(SampleSet(wide_set()), min_samples=10)
        assert report.is_adequate
        assert report.warnings() == []

    def test_thin_sample_count_flagged(self):
        report = coverage_report(
            SampleSet(wide_set(n=5)), min_samples=50
        )
        assert any("only 5 samples" in w for w in report.warnings())

    def test_narrow_span_flagged(self):
        narrow = SampleSet([sample("narrow", 5.0) for _ in range(60)])
        report = coverage_report(narrow, min_samples=10)
        assert any("decades" in w for w in report.warnings())

    def test_never_fired_flagged(self):
        silent = SampleSet([sample("silent", math.inf) for _ in range(60)])
        report = coverage_report(silent, min_samples=10)
        assert any("never fired" in w for w in report.warnings())
        assert report.for_metric("silent").infinite_count == 60

    def test_metric_filter(self):
        pooled = SampleSet(wide_set("a") + wide_set("b"))
        report = coverage_report(pooled, metrics=["a"], min_samples=10)
        assert [e.metric for e in report.metrics] == ["a"]
        with pytest.raises(DataError):
            report.for_metric("b")

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            coverage_report(SampleSet())

    def test_sorted_thinnest_first(self):
        pooled = SampleSet(
            wide_set("broad") + [sample("thin", 5.0) for _ in range(60)]
        )
        report = coverage_report(pooled, min_samples=10)
        assert report.metrics[0].metric == "thin"

    def test_render(self):
        report = coverage_report(SampleSet(wide_set()), min_samples=10)
        text = report.render()
        assert "decades" in text
        assert "adequate" in text


class TestOnRealCollections:
    def test_suite_training_data_covers_key_metrics(self, small_experiment):
        report = coverage_report(
            small_experiment.training_samples, min_samples=30, min_decades=0.5
        )
        # The diagnostic legitimately flags bookkeeping metrics with
        # near-constant per-instruction rates (uops_issued.any & co.) and
        # events only one workload exercises — but the paper's analysis
        # metrics must all be broadly covered.
        for metric in (
            "br_misp_retired.all_branches",
            "longest_lat_cache.miss",
            "idq.dsb_uops",
            "cycle_activity.stalls_total",
            "resource_stalls.any",
            "idq.ms_switches",
        ):
            entry = report.for_metric(metric)
            assert entry.intensity_decades > 0.5, metric
            assert entry.sample_count > 100, metric
        assert len(report.warnings()) <= 15
